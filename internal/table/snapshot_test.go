package table

import (
	"testing"

	"sciborq/internal/column"
)

func snapTestTable(t *testing.T) *Table {
	t.Helper()
	tb := MustNew("snap", Schema{
		{Name: "x", Type: column.Float64},
		{Name: "id", Type: column.Int64},
		{Name: "kind", Type: column.String},
		{Name: "ok", Type: column.Bool},
	})
	for i := 0; i < 10; i++ {
		if err := tb.AppendRow(Row{float64(i), int64(i), "a", i%2 == 0}); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

// TestSnapshotIsolation proves a snapshot pins length and values while
// the source table keeps growing — including new string dictionary
// entries, which mutate shared interning state on the live column.
func TestSnapshotIsolation(t *testing.T) {
	tb := snapTestTable(t)
	snap := tb.Snapshot()
	if snap.Len() != 10 {
		t.Fatalf("snapshot len = %d, want 10", snap.Len())
	}
	for i := 0; i < 100; i++ {
		if err := tb.AppendRow(Row{float64(100 + i), int64(100 + i), "fresh", false}); err != nil {
			t.Fatal(err)
		}
	}
	if snap.Len() != 10 {
		t.Fatalf("snapshot len moved to %d after appends", snap.Len())
	}
	if tb.Len() != 110 {
		t.Fatalf("source len = %d, want 110", tb.Len())
	}
	xs, err := snap.Float64("x")
	if err != nil {
		t.Fatal(err)
	}
	if len(xs) != 10 || xs[9] != 9 {
		t.Fatalf("snapshot x = %v", xs)
	}
	// The value interned only after the snapshot is invisible to it.
	sc := snap.MustCol("kind").(*column.StringCol)
	if _, present := sc.Code("fresh"); present {
		t.Fatal("snapshot sees post-snapshot dictionary entry")
	}
	if got := sc.Value(3); got != "a" {
		t.Fatalf("snapshot kind[3] = %q", got)
	}
}

// TestSnapshotRejectsAppends pins the append guard on all three append
// paths.
func TestSnapshotRejectsAppends(t *testing.T) {
	tb := snapTestTable(t)
	snap := tb.Snapshot()
	row := Row{float64(1), int64(1), "a", true}
	if err := snap.AppendRow(row); err == nil {
		t.Fatal("AppendRow on snapshot succeeded")
	}
	if err := snap.AppendBatch([]Row{row}); err == nil {
		t.Fatal("AppendBatch on snapshot succeeded")
	}
	chunks := []column.Column{
		column.NewFloat64From("x", []float64{1}),
		column.NewInt64From("id", []int64{1}),
		column.New("kind", column.String),
		column.New("ok", column.Bool),
	}
	chunks[2].(*column.StringCol).Append("a")
	chunks[3].(*column.BoolCol).Append(true)
	if err := snap.AppendColumns(chunks); err == nil {
		t.Fatal("AppendColumns on snapshot succeeded")
	}
	if snap.Len() != 10 {
		t.Fatalf("snapshot len = %d after rejected appends", snap.Len())
	}
}

// TestSnapshotOfSnapshot pins idempotence: snapshotting a snapshot is
// free and returns the same view.
func TestSnapshotOfSnapshot(t *testing.T) {
	tb := snapTestTable(t)
	s1 := tb.Snapshot()
	if s2 := s1.Snapshot(); s2 != s1 {
		t.Fatal("Snapshot of a snapshot returned a new table")
	}
}
