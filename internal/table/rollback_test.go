package table

import (
	"math"
	"testing"

	"sciborq/internal/column"
)

// TestRollbackRebuildsZoneMaps is the regression test for batch-rollback
// zone maps: a failed AppendBatch rolls the table back via
// truncateLocked, and the rebuilt per-granule min/max must be exactly
// what a table that never saw the poisoned batch carries. A stale zone
// map here is silent data corruption for the engine — a granule whose
// recorded max still includes the rolled-back values stops being
// prunable (performance) and, worse, a recorded min/max narrower than
// the survivors would prune live rows (wrong results).
func TestRollbackRebuildsZoneMaps(t *testing.T) {
	schema := Schema{
		{Name: "x", Type: column.Float64},
		{Name: "k", Type: column.Int64},
	}
	// 2.5 granules of clustered, ascending data, so the rollback point
	// lands mid-granule and every granule has distinct tight bounds.
	n := 2*column.ZoneRows + column.ZoneRows/2
	mkRow := func(i int) Row {
		return Row{float64(i) + 0.25, int64(i) * 3}
	}

	tb := MustNew("events", schema)
	ref := MustNew("events_ref", schema)
	batch := make([]Row, 0, 8192)
	for lo := 0; lo < n; lo += cap(batch) {
		batch = batch[:0]
		for i := lo; i < lo+cap(batch) && i < n; i++ {
			batch = append(batch, mkRow(i))
		}
		if err := tb.AppendBatch(batch); err != nil {
			t.Fatal(err)
		}
		if err := ref.AppendBatch(batch); err != nil {
			t.Fatal(err)
		}
	}

	// The poisoned batch: values far outside every live granule's range,
	// spilling past a granule boundary before the bad row fails it. Only
	// tb sees it; ref is the never-poisoned control.
	poison := make([]Row, 0, column.ZoneRows)
	for i := 0; i < column.ZoneRows-1; i++ {
		poison = append(poison, Row{1e12 + float64(i), int64(math.MaxInt64 - i)})
	}
	poison = append(poison, Row{"not a float", int64(0)})
	verBefore := tb.Version()
	if err := tb.AppendBatch(poison); err == nil {
		t.Fatal("poisoned batch accepted")
	}
	if tb.Len() != n {
		t.Fatalf("Len after rollback = %d, want %d", tb.Len(), n)
	}
	if tb.Version() == verBefore {
		t.Fatal("rollback did not bump the table version")
	}

	for _, name := range []string{"x", "k"} {
		col, err := tb.Col(name)
		if err != nil {
			t.Fatal(err)
		}
		refCol, _ := ref.Col(name)
		zm, ok := col.(column.ZoneMapped)
		if !ok {
			t.Fatalf("column %s lost its zone map after rollback", name)
		}
		zmin, zmax := zm.ZoneArrays()
		rmin, rmax := refCol.(column.ZoneMapped).ZoneArrays()
		wantGran := (n + column.ZoneRows - 1) / column.ZoneRows
		if len(zmin) != wantGran || len(zmax) != wantGran {
			t.Fatalf("%s: %d granules after rollback, want %d", name, len(zmin), wantGran)
		}
		for g := range zmin {
			if math.Float64bits(zmin[g]) != math.Float64bits(rmin[g]) ||
				math.Float64bits(zmax[g]) != math.Float64bits(rmax[g]) {
				t.Fatalf("%s granule %d: bounds [%v, %v] after rollback, control has [%v, %v]",
					name, g, zmin[g], zmax[g], rmin[g], rmax[g])
			}
		}

		// Pruning count for a predicate that only the poisoned rows could
		// satisfy: every granule must be prunable, i.e. no recorded max
		// still remembers the rolled-back values.
		prunable := 0
		for g := range zmax {
			if zmax[g] < 1e12 {
				prunable++
			}
		}
		if prunable != wantGran {
			t.Fatalf("%s: only %d/%d granules prunable for x >= 1e12 after rollback",
				name, prunable, wantGran)
		}
	}

	// The rolled-back table must keep accepting appends with correct
	// incremental zone maintenance: the next batch reopens the partial
	// granule exactly where the survivors left off.
	more := []Row{mkRow(n), mkRow(n + 1)}
	if err := tb.AppendBatch(more); err != nil {
		t.Fatal(err)
	}
	if err := ref.AppendBatch(more); err != nil {
		t.Fatal(err)
	}
	x, _ := tb.Col("x")
	rx, _ := ref.Col("x")
	zmin, zmax := x.(column.ZoneMapped).ZoneArrays()
	rmin, rmax := rx.(column.ZoneMapped).ZoneArrays()
	g := len(zmin) - 1
	if zmin[g] != rmin[g] || zmax[g] != rmax[g] {
		t.Fatalf("post-rollback append: last granule [%v, %v], control [%v, %v]",
			zmin[g], zmax[g], rmin[g], rmax[g])
	}
}
