package table

import (
	"strings"
	"testing"

	"sciborq/internal/column"
	"sciborq/internal/vec"
)

func photoSchema() Schema {
	return Schema{
		{Name: "objID", Type: column.Int64},
		{Name: "ra", Type: column.Float64},
		{Name: "dec", Type: column.Float64},
		{Name: "type", Type: column.String},
		{Name: "clean", Type: column.Bool},
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New("t", nil); err == nil {
		t.Fatal("empty schema accepted")
	}
	if _, err := New("t", Schema{{Name: "", Type: column.Int64}}); err == nil {
		t.Fatal("empty column name accepted")
	}
	dup := Schema{{Name: "a", Type: column.Int64}, {Name: "a", Type: column.Float64}}
	if _, err := New("t", dup); err == nil {
		t.Fatal("duplicate column accepted")
	}
}

func TestAppendRowAndAccess(t *testing.T) {
	tb := MustNew("PhotoObjAll", photoSchema())
	rows := []Row{
		{int64(1), 185.0, 0.5, "GALAXY", true},
		{int64(2), 186.0, -0.5, "STAR", false},
	}
	for _, r := range rows {
		if err := tb.AppendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	if tb.Len() != 2 {
		t.Fatalf("Len = %d", tb.Len())
	}
	ra, err := tb.Float64("ra")
	if err != nil {
		t.Fatal(err)
	}
	if ra[0] != 185.0 || ra[1] != 186.0 {
		t.Fatalf("ra = %v", ra)
	}
	ids, err := tb.Int64("objID")
	if err != nil {
		t.Fatal(err)
	}
	if ids[1] != 2 {
		t.Fatalf("objID = %v", ids)
	}
}

func TestAppendRowTypeErrors(t *testing.T) {
	tb := MustNew("t", photoSchema())
	cases := []Row{
		{int64(1), 185.0, 0.5, "GALAXY"},              // arity
		{1, 185.0, 0.5, "GALAXY", true},               // int not int64
		{int64(1), float32(185), 0.5, "GALAXY", true}, // float32
		{int64(1), 185.0, 0.5, 42, true},              // not string
		{int64(1), 185.0, 0.5, "GALAXY", "yes"},       // not bool
		{int64(1), 185.0, "x", "GALAXY", true},        // wrong slot type
	}
	for i, r := range cases {
		if err := tb.AppendRow(r); err == nil {
			t.Fatalf("case %d: bad row accepted", i)
		}
	}
	if tb.Len() != 0 {
		t.Fatalf("failed appends left %d rows", tb.Len())
	}
}

func TestAppendBatchAtomicity(t *testing.T) {
	tb := MustNew("t", photoSchema())
	good := Row{int64(1), 1.0, 2.0, "GALAXY", true}
	bad := Row{int64(2), "oops", 2.0, "STAR", true}
	if err := tb.AppendBatch([]Row{good, bad, good}); err == nil {
		t.Fatal("batch with bad row accepted")
	}
	if tb.Len() != 0 {
		t.Fatalf("failed batch left %d rows, want 0", tb.Len())
	}
	if err := tb.AppendBatch([]Row{good, good}); err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 2 {
		t.Fatalf("Len = %d", tb.Len())
	}
}

func TestAppendBatchRollbackKeepsPrefix(t *testing.T) {
	tb := MustNew("t", Schema{{Name: "x", Type: column.Float64}})
	if err := tb.AppendBatch([]Row{{1.0}, {2.0}}); err != nil {
		t.Fatal(err)
	}
	if err := tb.AppendBatch([]Row{{3.0}, {"bad"}}); err == nil {
		t.Fatal("bad batch accepted")
	}
	x, _ := tb.Float64("x")
	if len(x) != 2 || x[0] != 1 || x[1] != 2 {
		t.Fatalf("rollback corrupted prefix: %v", x)
	}
}

func TestAppendColumns(t *testing.T) {
	tb := MustNew("t", Schema{
		{Name: "a", Type: column.Float64},
		{Name: "b", Type: column.Int64},
	})
	chunks := []column.Column{
		column.NewFloat64From("a", []float64{1, 2, 3}),
		column.NewInt64From("b", []int64{10, 20, 30}),
	}
	if err := tb.AppendColumns(chunks); err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 3 {
		t.Fatalf("Len = %d", tb.Len())
	}
	uneven := []column.Column{
		column.NewFloat64From("a", []float64{1}),
		column.NewInt64From("b", []int64{}),
	}
	if err := tb.AppendColumns(uneven); err == nil {
		t.Fatal("uneven chunks accepted")
	}
	if err := tb.AppendColumns(chunks[:1]); err == nil {
		t.Fatal("wrong chunk count accepted")
	}
}

func TestColErrors(t *testing.T) {
	tb := MustNew("t", photoSchema())
	if _, err := tb.Col("nope"); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("missing column error unhelpful: %v", err)
	}
	if _, err := tb.Float64("objID"); err == nil {
		t.Fatal("Float64 on BIGINT column accepted")
	}
	if _, err := tb.Int64("ra"); err == nil {
		t.Fatal("Int64 on DOUBLE column accepted")
	}
}

func TestProject(t *testing.T) {
	tb := MustNew("t", photoSchema())
	for i := 0; i < 5; i++ {
		err := tb.AppendRow(Row{int64(i), float64(i), -float64(i), "GALAXY", true})
		if err != nil {
			t.Fatal(err)
		}
	}
	p, err := tb.Project("p", []string{"ra", "objID"}, vec.Sel{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 {
		t.Fatalf("projected Len = %d", p.Len())
	}
	ra, _ := p.Float64("ra")
	if ra[0] != 1 || ra[1] != 3 {
		t.Fatalf("projected ra = %v", ra)
	}
	if _, err := tb.Project("p", []string{"missing"}, nil); err == nil {
		t.Fatal("projection of missing column accepted")
	}
}

func TestRowStrings(t *testing.T) {
	tb := MustNew("t", photoSchema())
	if err := tb.AppendRow(Row{int64(7), 1.5, -2.5, "QSO", false}); err != nil {
		t.Fatal(err)
	}
	got := tb.RowStrings(0)
	want := []string{"7", "1.5", "-2.5", "QSO", "false"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RowStrings = %v, want %v", got, want)
		}
	}
}

func TestSchemaHelpers(t *testing.T) {
	s := photoSchema()
	if s.Index("dec") != 2 {
		t.Fatalf("Index(dec) = %d", s.Index("dec"))
	}
	if s.Index("zzz") != -1 {
		t.Fatal("Index of missing column should be -1")
	}
	names := s.Names()
	if names[0] != "objID" || names[4] != "clean" {
		t.Fatalf("Names = %v", names)
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	tb := MustNew("PhotoObjAll", photoSchema())
	if err := c.Add(tb); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(tb); err == nil {
		t.Fatal("duplicate table accepted")
	}
	got, err := c.Get("PhotoObjAll")
	if err != nil || got != tb {
		t.Fatalf("Get = %v, %v", got, err)
	}
	if _, err := c.Get("missing"); err == nil {
		t.Fatal("missing table lookup succeeded")
	}
	if names := c.Names(); len(names) != 1 || names[0] != "PhotoObjAll" {
		t.Fatalf("Names = %v", names)
	}
	if err := c.Drop("PhotoObjAll"); err != nil {
		t.Fatal(err)
	}
	if err := c.Drop("PhotoObjAll"); err == nil {
		t.Fatal("double drop succeeded")
	}
}
