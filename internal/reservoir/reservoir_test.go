package reservoir

import (
	"math"
	"testing"

	"sciborq/internal/xrand"
)

func TestNewRValidation(t *testing.T) {
	if _, err := NewR[int](0, xrand.New(1)); err == nil {
		t.Fatal("capacity 0 accepted")
	}
	if _, err := NewR[int](5, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}

func TestRFillPhase(t *testing.T) {
	r, _ := NewR[int](5, xrand.New(1))
	for i := 0; i < 3; i++ {
		r.Offer(i)
	}
	if len(r.Items()) != 3 || r.Count() != 3 {
		t.Fatalf("fill phase: %d items, count %d", len(r.Items()), r.Count())
	}
	for i := 3; i < 100; i++ {
		r.Offer(i)
	}
	if len(r.Items()) != 5 || r.Cap() != 5 {
		t.Fatalf("reservoir size %d after overflow", len(r.Items()))
	}
}

// inclusionRates offers stream [0, streamN) `trials` times and returns
// per-item inclusion frequencies.
func inclusionRates(t *testing.T, makeSampler func(seed uint64) interface {
	Offer(int)
	Items() []int
}, streamN, trials int) []float64 {
	t.Helper()
	counts := make([]float64, streamN)
	for tr := 0; tr < trials; tr++ {
		s := makeSampler(uint64(tr) + 1)
		for i := 0; i < streamN; i++ {
			s.Offer(i)
		}
		for _, v := range s.Items() {
			counts[v]++
		}
	}
	for i := range counts {
		counts[i] /= float64(trials)
	}
	return counts
}

func TestRUniformInclusion(t *testing.T) {
	// Property of Figure 2: every stream position is included with
	// probability n/cnt.
	const n, streamN, trials = 20, 200, 3000
	rates := inclusionRates(t, func(seed uint64) interface {
		Offer(int)
		Items() []int
	} {
		r, _ := NewR[int](n, xrand.New(seed))
		return r
	}, streamN, trials)
	want := float64(n) / float64(streamN)
	for i, got := range rates {
		if math.Abs(got-want) > 0.025 {
			t.Fatalf("position %d inclusion %v, want %v", i, got, want)
		}
	}
}

func TestXMatchesRDistribution(t *testing.T) {
	// Vitter's X must give the same uniform inclusion probabilities.
	const n, streamN, trials = 20, 200, 3000
	rates := inclusionRates(t, func(seed uint64) interface {
		Offer(int)
		Items() []int
	} {
		x, _ := NewX[int](n, xrand.New(seed))
		return x
	}, streamN, trials)
	want := float64(n) / float64(streamN)
	for i, got := range rates {
		if math.Abs(got-want) > 0.025 {
			t.Fatalf("position %d inclusion %v, want %v", i, got, want)
		}
	}
}

func TestXSmallStream(t *testing.T) {
	x, _ := NewX[int](10, xrand.New(3))
	for i := 0; i < 5; i++ {
		x.Offer(i)
	}
	if len(x.Items()) != 5 {
		t.Fatalf("underfull X has %d items", len(x.Items()))
	}
	if x.Cap() != 10 || x.Count() != 5 {
		t.Fatal("metadata wrong")
	}
}

func TestNewXValidation(t *testing.T) {
	if _, err := NewX[int](-1, xrand.New(1)); err == nil {
		t.Fatal("negative capacity accepted")
	}
	if _, err := NewX[int](5, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}

func TestNewLastSeenValidation(t *testing.T) {
	r := xrand.New(1)
	if _, err := NewLastSeen[int](0, 1, 10, false, r); err == nil {
		t.Fatal("capacity 0 accepted")
	}
	if _, err := NewLastSeen[int](5, -1, 10, false, r); err == nil {
		t.Fatal("negative k accepted")
	}
	if _, err := NewLastSeen[int](5, 11, 10, false, r); err == nil {
		t.Fatal("k > D accepted")
	}
	if _, err := NewLastSeen[int](5, 1, 0, false, r); err == nil {
		t.Fatal("D=0 accepted")
	}
	if _, err := NewLastSeen[int](5, 1, 10, false, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}

func TestLastSeenRecencyBias(t *testing.T) {
	// With acceptance probability k/D, recent arrivals must be far more
	// frequent in the sample than old ones: the expected survival of an
	// item accepted at time s decays as (1 - (k/D)/n)^(arrivals after s).
	const n, streamN, trials = 50, 5000, 200
	oldCount, newCount := 0, 0
	for tr := 0; tr < trials; tr++ {
		ls, err := NewLastSeen[int](n, 500, 1000, false, xrand.New(uint64(tr)+1))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < streamN; i++ {
			ls.Offer(i)
		}
		for _, v := range ls.Items() {
			if v < streamN/2 {
				oldCount++
			} else {
				newCount++
			}
		}
	}
	if newCount < 10*oldCount {
		t.Fatalf("recency bias too weak: old=%d new=%d", oldCount, newCount)
	}
}

func TestLastSeenAcceptProb(t *testing.T) {
	ls, _ := NewLastSeen[int](10, 250, 1000, false, xrand.New(1))
	if got := ls.AcceptProb(); got != 0.25 {
		t.Fatalf("AcceptProb = %v", got)
	}
}

func TestLastSeenFaithfulSlotSkew(t *testing.T) {
	// The verbatim Figure-3 rule confines victims to slots
	// [0, n·k/D): with k/D = 0.25 and n = 100, slots >= 25 never change
	// after the fill phase. The corrected variant replaces everywhere.
	const n = 100
	faithful, _ := NewLastSeen[int](n, 250, 1000, true, xrand.New(7))
	for i := 0; i < 100000; i++ {
		faithful.Offer(i)
	}
	for slot := 30; slot < n; slot++ {
		if faithful.Items()[slot] != slot {
			t.Fatalf("faithful variant replaced slot %d; expected fill-phase item to survive", slot)
		}
	}
	corrected, _ := NewLastSeen[int](n, 250, 1000, false, xrand.New(7))
	for i := 0; i < 100000; i++ {
		corrected.Offer(i)
	}
	surviving := 0
	for slot := 0; slot < n; slot++ {
		if corrected.Items()[slot] == slot {
			surviving++
		}
	}
	if surviving > n/2 {
		t.Fatalf("corrected variant left %d fill-phase items in place", surviving)
	}
}

func TestNewBiasedValidation(t *testing.T) {
	w := func(int) float64 { return 1 }
	if _, err := NewBiased[int](0, w, false, xrand.New(1)); err == nil {
		t.Fatal("capacity 0 accepted")
	}
	if _, err := NewBiased[int](5, nil, false, xrand.New(1)); err == nil {
		t.Fatal("nil weight accepted")
	}
	if _, err := NewBiased[int](5, w, false, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}

func TestBiasedFavoursHeavyItems(t *testing.T) {
	// Items in the "focal" half get bias weight 9x the rest; they must
	// be oversampled by roughly that odds ratio.
	const n, streamN, trials = 100, 10000, 60
	heavy, light := 0, 0
	weight := func(v int) float64 {
		if v%2 == 0 {
			return 9
		}
		return 1
	}
	for tr := 0; tr < trials; tr++ {
		b, err := NewBiased[int](n, weight, false, xrand.New(uint64(tr)+1))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < streamN; i++ {
			b.Offer(i)
		}
		for _, it := range b.Items() {
			if it.Item%2 == 0 {
				heavy++
			} else {
				light++
			}
		}
	}
	ratio := float64(heavy) / float64(light)
	if ratio < 3 {
		t.Fatalf("bias ratio %v too weak (heavy=%d light=%d)", ratio, heavy, light)
	}
}

func TestBiasedZeroWeightNeverAccepted(t *testing.T) {
	// After the fill phase, zero-weight items must never enter.
	weight := func(v int) float64 {
		if v < 10 {
			return 1
		}
		return 0
	}
	b, _ := NewBiased[int](10, weight, false, xrand.New(5))
	for i := 0; i < 10000; i++ {
		b.Offer(i)
	}
	for _, it := range b.Items() {
		if it.Item >= 10 {
			t.Fatalf("zero-weight item %d entered the sample", it.Item)
		}
	}
}

func TestBiasedNegativeAndNaNWeightsClamped(t *testing.T) {
	weight := func(v int) float64 {
		switch v % 3 {
		case 0:
			return -5
		case 1:
			return math.NaN()
		}
		return 1
	}
	b, _ := NewBiased[int](5, weight, false, xrand.New(5))
	for i := 0; i < 1000; i++ {
		b.Offer(i)
	}
	for _, it := range b.Items() {
		if it.Weight < 0 || math.IsNaN(it.Weight) {
			t.Fatalf("unclamped weight %v", it.Weight)
		}
	}
}

func TestBiasedRecordsSeqAndWeight(t *testing.T) {
	b, _ := NewBiased[int](3, func(int) float64 { return 2 }, false, xrand.New(1))
	b.Offer(7)
	items := b.Items()
	if items[0].Item != 7 || items[0].Weight != 2 || items[0].Seq != 1 {
		t.Fatalf("recorded %+v", items[0])
	}
}

func TestBiasedAcceptProb(t *testing.T) {
	b, _ := NewBiased[int](10, func(int) float64 { return 1 }, false, xrand.New(1))
	if b.AcceptProb(0.5) != 1 {
		t.Fatal("fill phase should accept with probability 1")
	}
	for i := 0; i < 100; i++ {
		b.Offer(i)
	}
	// p = n*w/cnt = 10*0.5/100.
	if got := b.AcceptProb(0.5); math.Abs(got-0.05) > 1e-12 {
		t.Fatalf("AcceptProb = %v", got)
	}
	if b.AcceptProb(1000) != 1 {
		t.Fatal("probability must clamp to 1")
	}
	if b.AcceptProb(-1) != 0 {
		t.Fatal("negative weight must clamp to 0")
	}
}

func TestBiasedUniformWeightMatchesR(t *testing.T) {
	// With a constant bias factor w = cnt/... the Figure-6 rule with
	// w=1 gives acceptance n/cnt — identical to Algorithm R. Inclusion
	// probabilities must then be uniform.
	const n, streamN, trials = 20, 200, 3000
	counts := make([]float64, streamN)
	for tr := 0; tr < trials; tr++ {
		b, _ := NewBiased[int](n, func(int) float64 { return 1 }, false, xrand.New(uint64(tr)+1))
		for i := 0; i < streamN; i++ {
			b.Offer(i)
		}
		for _, it := range b.Items() {
			counts[it.Item]++
		}
	}
	want := float64(n) / float64(streamN)
	for i := range counts {
		got := counts[i] / trials
		if math.Abs(got-want) > 0.025 {
			t.Fatalf("position %d inclusion %v, want %v", i, got, want)
		}
	}
}

func TestFaithfulBiasedSlotSkew(t *testing.T) {
	// Figure-6 verbatim: victim slot floor(rnd·n) with rnd < n·w/cnt.
	// As cnt grows the acceptance threshold shrinks, so victims
	// concentrate near slot 0; high slots almost never change.
	const n = 100
	b, _ := NewBiased[int](n, func(int) float64 { return 1 }, true, xrand.New(11))
	for i := 0; i < 100000; i++ {
		b.Offer(i)
	}
	stale := 0
	for slot := n / 2; slot < n; slot++ {
		if b.Items()[slot].Item == slot {
			stale++
		}
	}
	if stale < n/4 {
		t.Fatalf("expected upper slots to stay stale under faithful rule, got %d stale", stale)
	}
}

func TestESValidation(t *testing.T) {
	if _, err := NewES[int](0, xrand.New(1)); err == nil {
		t.Fatal("capacity 0 accepted")
	}
	if _, err := NewES[int](3, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}

func TestESWeightedInclusion(t *testing.T) {
	// With weights 9:1 on two halves, heavy items must dominate.
	const n, streamN, trials = 50, 2000, 100
	heavy, light := 0, 0
	for tr := 0; tr < trials; tr++ {
		es, _ := NewES[int](n, xrand.New(uint64(tr)+1))
		for i := 0; i < streamN; i++ {
			w := 1.0
			if i%2 == 0 {
				w = 9.0
			}
			es.Offer(i, w)
		}
		for _, it := range es.Items() {
			if it.Item%2 == 0 {
				heavy++
			} else {
				light++
			}
		}
	}
	if float64(heavy)/float64(light) < 4 {
		t.Fatalf("ES weighting too weak: heavy=%d light=%d", heavy, light)
	}
}

func TestESIgnoresNonPositiveWeights(t *testing.T) {
	es, _ := NewES[int](5, xrand.New(3))
	es.Offer(1, 0)
	es.Offer(2, -4)
	es.Offer(3, math.NaN())
	if len(es.Items()) != 0 {
		t.Fatalf("non-positive weights sampled: %v", es.Items())
	}
	es.Offer(4, 1)
	if len(es.Items()) != 1 || es.Count() != 4 {
		t.Fatalf("items=%d count=%d", len(es.Items()), es.Count())
	}
	if es.Cap() != 5 {
		t.Fatal("cap wrong")
	}
}

func TestESKeepsCapacity(t *testing.T) {
	es, _ := NewES[int](10, xrand.New(4))
	for i := 0; i < 1000; i++ {
		es.Offer(i, 1)
	}
	if len(es.Items()) != 10 {
		t.Fatalf("ES holds %d items", len(es.Items()))
	}
}
