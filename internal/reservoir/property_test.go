package reservoir

import (
	"testing"
	"testing/quick"

	"sciborq/internal/xrand"
)

// Property: any reservoir's sample size is min(cap, offered), and every
// sampled item was actually offered.
func TestRInvariants(t *testing.T) {
	f := func(capRaw, streamRaw uint16, seed uint64) bool {
		capN := int(capRaw%512) + 1
		stream := int(streamRaw % 4096)
		r, err := NewR[int](capN, xrand.New(seed))
		if err != nil {
			return false
		}
		for i := 0; i < stream; i++ {
			r.Offer(i)
		}
		want := capN
		if stream < capN {
			want = stream
		}
		if len(r.Items()) != want {
			return false
		}
		for _, v := range r.Items() {
			if v < 0 || v >= stream {
				return false
			}
		}
		return r.Count() == int64(stream)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: X holds the same invariants as R.
func TestXInvariants(t *testing.T) {
	f := func(capRaw, streamRaw uint16, seed uint64) bool {
		capN := int(capRaw%512) + 1
		stream := int(streamRaw % 4096)
		x, err := NewX[int](capN, xrand.New(seed))
		if err != nil {
			return false
		}
		for i := 0; i < stream; i++ {
			x.Offer(i)
		}
		want := capN
		if stream < capN {
			want = stream
		}
		if len(x.Items()) != want {
			return false
		}
		for _, v := range x.Items() {
			if v < 0 || v >= stream {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: sample distinctness — a reservoir never holds the same
// stream position twice (each position is offered once).
func TestRDistinctness(t *testing.T) {
	r, _ := NewR[int](256, xrand.New(44))
	for i := 0; i < 10000; i++ {
		r.Offer(i)
	}
	seen := make(map[int]bool, 256)
	for _, v := range r.Items() {
		if seen[v] {
			t.Fatalf("duplicate position %d in reservoir", v)
		}
		seen[v] = true
	}
}

// Property: Biased invariants — size bound, Pi in (0, 1], weights
// echo the weight function.
func TestBiasedInvariants(t *testing.T) {
	f := func(capRaw, streamRaw uint16, seed uint64) bool {
		capN := int(capRaw%256) + 1
		stream := int(streamRaw % 2048)
		weight := func(v int) float64 { return 0.1 + float64(v%7) }
		b, err := NewBiased[int](capN, weight, false, xrand.New(seed))
		if err != nil {
			return false
		}
		for i := 0; i < stream; i++ {
			b.Offer(i)
		}
		want := capN
		if stream < capN {
			want = stream
		}
		items := b.Items()
		if len(items) != want {
			return false
		}
		for _, it := range items {
			if it.Pi <= 0 || it.Pi > 1 {
				return false
			}
			if it.Weight != weight(it.Item) {
				return false
			}
			if it.Seq < 1 || it.Seq > int64(stream) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: LastSeen size bound holds for any k <= D.
func TestLastSeenInvariants(t *testing.T) {
	f := func(capRaw uint8, kRaw, dRaw uint16, seed uint64) bool {
		capN := int(capRaw%64) + 1
		d := float64(dRaw%1000) + 1
		k := float64(kRaw) * d / 65535 // k in [0, d]
		ls, err := NewLastSeen[int](capN, k, d, false, xrand.New(seed))
		if err != nil {
			return false
		}
		for i := 0; i < 2000; i++ {
			ls.Offer(i)
		}
		return len(ls.Items()) == capN
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: ES holds at most cap items and only positive-weight ones.
func TestESInvariants(t *testing.T) {
	f := func(capRaw, streamRaw uint16, seed uint64) bool {
		capN := int(capRaw%256) + 1
		stream := int(streamRaw % 2048)
		es, err := NewES[int](capN, xrand.New(seed))
		if err != nil {
			return false
		}
		for i := 0; i < stream; i++ {
			w := float64(i%5) - 1 // some non-positive weights
			es.Offer(i, w)
		}
		if len(es.Items()) > capN {
			return false
		}
		for _, it := range es.Items() {
			if it.Weight <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
