// Package reservoir implements the sampling algorithms of SciBORQ §3.3–§4:
//
//   - R: the classical reservoir algorithm (paper Figure 2, Vitter [24]).
//   - X: Vitter's skip-based Algorithm X — identical distribution to R with
//     O(expected skips) RNG calls; used on large ingests.
//   - LastSeen: the recency-biased reservoir of Figure 3 — acceptance with
//     fixed probability k/D so recently loaded tuples dominate.
//   - Biased: the workload-biased reservoir of Figure 6 — acceptance
//     probability f̆(t)·N·n/cnt steered by the binned KDE over the
//     workload's predicate set.
//
// Figures 3 and 6 of the paper reuse one random draw for both the
// acceptance test and the victim slot, which conditions the slot on
// acceptance and skews eviction toward low slots. Each sampler is
// provided in a Faithful variant (paper pseudo-code, verbatim semantics)
// and a corrected variant drawing an independent slot; the ablation bench
// quantifies the difference and all experiments use the corrected form.
package reservoir

import (
	"fmt"
	"math"

	"sciborq/internal/xrand"
)

// Hook observes sample mutations: added is the item that just entered
// the sample; evicted points at the item it displaced, and is nil
// during the fill phase. Hooks run synchronously inside Offer — they
// are how impressions maintain their sorted position views
// incrementally instead of rebuilding them per query. Offers that
// leave the sample unchanged trigger no hook.
type Hook[T any] func(added T, evicted *T)

// R is the classical reservoir sampler of Figure 2: after cnt offers,
// every offered item is in the sample with probability n/cnt.
type R[T any] struct {
	cap   int
	cnt   int64
	items []T
	rng   *xrand.RNG
	hook  Hook[T]
}

// NewR returns a reservoir of capacity n seeded by rng.
func NewR[T any](n int, rng *xrand.RNG) (*R[T], error) {
	if n <= 0 {
		return nil, fmt.Errorf("reservoir: capacity must be positive, got %d", n)
	}
	if rng == nil {
		return nil, fmt.Errorf("reservoir: nil rng")
	}
	return &R[T]{cap: n, items: make([]T, 0, n), rng: rng}, nil
}

// SetHook installs the mutation observer (nil to remove).
func (r *R[T]) SetHook(h Hook[T]) { r.hook = h }

// Offer presents one item to the reservoir.
func (r *R[T]) Offer(item T) {
	r.cnt++
	if len(r.items) < r.cap {
		r.items = append(r.items, item)
		if r.hook != nil {
			r.hook(item, nil)
		}
		return
	}
	// Accept with probability n/cnt; the accepted item replaces a
	// uniformly random victim. Using one draw for both is correct here
	// (this is exactly Figure 2: rnd := floor(cnt*random()); accept and
	// place at rnd when rnd < n — the slot is uniform given acceptance).
	if j := r.rng.Uint64n(uint64(r.cnt)); j < uint64(r.cap) {
		victim := r.items[j]
		r.items[j] = item
		if r.hook != nil {
			r.hook(item, &victim)
		}
	}
}

// Items returns the current sample (live storage; do not mutate).
func (r *R[T]) Items() []T { return r.items }

// Count returns the number of items offered so far.
func (r *R[T]) Count() int64 { return r.cnt }

// Cap returns the reservoir capacity n.
func (r *R[T]) Cap() int { return r.cap }

// X is Vitter's Algorithm X: statistically identical to R but it draws
// one variate per *accepted* item by computing how many offers to skip.
type X[T any] struct {
	cap   int
	cnt   int64
	skip  int64 // offers to ignore before the next acceptance
	items []T
	rng   *xrand.RNG
}

// NewX returns a skip-based reservoir of capacity n.
func NewX[T any](n int, rng *xrand.RNG) (*X[T], error) {
	if n <= 0 {
		return nil, fmt.Errorf("reservoir: capacity must be positive, got %d", n)
	}
	if rng == nil {
		return nil, fmt.Errorf("reservoir: nil rng")
	}
	return &X[T]{cap: n, items: make([]T, 0, n), rng: rng}, nil
}

// Offer presents one item.
func (x *X[T]) Offer(item T) {
	x.cnt++
	if len(x.items) < x.cap {
		x.items = append(x.items, item)
		if len(x.items) == x.cap {
			x.computeSkip()
		}
		return
	}
	if x.skip > 0 {
		x.skip--
		return
	}
	x.items[x.rng.Intn(x.cap)] = item
	x.computeSkip()
}

// computeSkip draws the number of subsequent offers to reject, using the
// inverse-CDF of the skip distribution: after cnt offers the next
// acceptance happens at the smallest s >= 0 with
// prod_{i=1..s+1} (1 - n/(cnt+i)) < u.
func (x *X[T]) computeSkip() {
	u := x.rng.Float64()
	var s int64
	prod := 1.0
	cnt := float64(x.cnt)
	n := float64(x.cap)
	for {
		prod *= 1 - n/(cnt+float64(s)+1)
		if prod <= u || prod <= 0 {
			break
		}
		s++
	}
	x.skip = s
}

// Items returns the current sample (live storage; do not mutate).
func (x *X[T]) Items() []T { return x.items }

// Count returns the number of items offered so far.
func (x *X[T]) Count() int64 { return x.cnt }

// Cap returns the capacity.
func (x *X[T]) Cap() int { return x.cap }

// LastSeen is the recency-focused impression builder of Figure 3. Once
// the reservoir is full, each arriving tuple is accepted with the fixed
// probability k/D — where D is tuned to the expected daily ingest and
// k <= n sets the desired fraction of fresh tuples — so old tuples decay
// geometrically.
type LastSeen[T any] struct {
	cap      int
	k, d     float64
	cnt      int64
	items    []T
	rng      *xrand.RNG
	faithful bool
	hook     Hook[T]
}

// NewLastSeen builds a Last Seen reservoir of capacity n with acceptance
// probability k/D. faithful selects the verbatim Figure-3 victim rule
// (slot = floor(n·rnd) with the same rnd as the acceptance test).
func NewLastSeen[T any](n int, k, d float64, faithful bool, rng *xrand.RNG) (*LastSeen[T], error) {
	if n <= 0 {
		return nil, fmt.Errorf("reservoir: capacity must be positive, got %d", n)
	}
	if !(d > 0) || k < 0 || k > d {
		return nil, fmt.Errorf("reservoir: need 0 <= k <= D and D > 0, got k=%g D=%g", k, d)
	}
	if rng == nil {
		return nil, fmt.Errorf("reservoir: nil rng")
	}
	return &LastSeen[T]{cap: n, k: k, d: d, items: make([]T, 0, n), rng: rng, faithful: faithful}, nil
}

// SetHook installs the mutation observer (nil to remove).
func (l *LastSeen[T]) SetHook(h Hook[T]) { l.hook = h }

// Offer presents one item.
func (l *LastSeen[T]) Offer(item T) {
	l.cnt++
	if len(l.items) < l.cap {
		l.items = append(l.items, item)
		if l.hook != nil {
			l.hook(item, nil)
		}
		return
	}
	rnd := l.rng.Float64()
	if l.d*rnd >= l.k {
		return
	}
	var slot int
	if l.faithful {
		// Figure 3 verbatim: smp[floor(n*rnd)] := tpl. Given acceptance,
		// rnd ∈ [0, k/D), so slots are confined to [0, n·k/D).
		slot = int(float64(l.cap) * rnd)
		if slot >= l.cap {
			slot = l.cap - 1
		}
	} else {
		slot = l.rng.Intn(l.cap)
	}
	victim := l.items[slot]
	l.items[slot] = item
	if l.hook != nil {
		l.hook(item, &victim)
	}
}

// Items returns the current sample (live storage; do not mutate).
func (l *LastSeen[T]) Items() []T { return l.items }

// Count returns the number of items offered so far.
func (l *LastSeen[T]) Count() int64 { return l.cnt }

// Cap returns the capacity.
func (l *LastSeen[T]) Cap() int { return l.cap }

// AcceptProb returns the fixed acceptance probability k/D.
func (l *LastSeen[T]) AcceptProb() float64 { return l.k / l.d }

// Weighted holds one sampled item together with the bias weight in force
// when it was accepted and an estimate of its inclusion probability.
type Weighted[T any] struct {
	Item T
	// Weight is the bias factor f̆(t)·N used in the acceptance test: the
	// expected number of workload predicate values near the tuple.
	Weight float64
	// Pi estimates the probability that this tuple is in the final
	// sample: its acceptance probability at offer time multiplied by its
	// survival probability through the evictions that followed,
	// (1 − 1/n)^(K − k). Estimators invert Pi (Horvitz–Thompson style);
	// it accounts for the fill phase (acceptance 1) and for acceptance-
	// probability clamping, which the raw bias factor cannot.
	Pi float64
	// Seq is the 1-based offer sequence number (arrival order).
	Seq int64
}

// Biased is the workload-biased reservoir of Figure 6. The acceptance
// probability for tuple t at offer cnt is
//
//	P(accept t) = f̆(t) · N · n / cnt
//
// (clamped to 1), where f̆ is the binned KDE over the predicate set, N is
// the number of logged predicate values, and n the impression size.
type Biased[T any] struct {
	cap      int
	cnt      int64
	accepts  int64 // replacement acceptances (evictions) so far, K
	items    []biasedItem[T]
	rng      *xrand.RNG
	weight   func(T) float64 // returns f̆(t)·N, the bias factor
	faithful bool
	hook     Hook[T]
}

// biasedItem records the acceptance metadata needed to reconstruct the
// item's inclusion probability.
type biasedItem[T any] struct {
	item    T
	weight  float64 // bias factor at offer time
	pAccept float64 // acceptance probability used (1 in the fill phase)
	kAt     int64   // eviction counter right after this item entered
	seq     int64
}

// NewBiased builds a biased reservoir of capacity n. weight must return
// the bias factor f̆(t)·N for a tuple (>= 0). faithful selects the
// verbatim Figure-6 victim rule.
func NewBiased[T any](n int, weight func(T) float64, faithful bool, rng *xrand.RNG) (*Biased[T], error) {
	if n <= 0 {
		return nil, fmt.Errorf("reservoir: capacity must be positive, got %d", n)
	}
	if weight == nil {
		return nil, fmt.Errorf("reservoir: nil weight function")
	}
	if rng == nil {
		return nil, fmt.Errorf("reservoir: nil rng")
	}
	return &Biased[T]{cap: n, items: make([]biasedItem[T], 0, n), rng: rng, weight: weight, faithful: faithful}, nil
}

// Offer presents one item.
func (b *Biased[T]) Offer(item T) {
	b.cnt++
	w := b.weight(item)
	if w < 0 || math.IsNaN(w) {
		w = 0
	}
	if len(b.items) < b.cap {
		b.items = append(b.items, biasedItem[T]{item: item, weight: w, pAccept: 1, kAt: b.accepts, seq: b.cnt})
		if b.hook != nil {
			b.hook(item, nil)
		}
		return
	}
	rnd := b.rng.Float64()
	// Figure 6: accept iff cnt·rnd < n·N·f̆(t), i.e. rnd < n·w/cnt.
	if float64(b.cnt)*rnd >= float64(b.cap)*w {
		return
	}
	var slot int
	if b.faithful {
		// Figure 6 verbatim: smp[floor(rnd·n)] := tpl.
		slot = int(rnd * float64(b.cap))
		if slot >= b.cap {
			slot = b.cap - 1
		}
	} else {
		slot = b.rng.Intn(b.cap)
	}
	b.accepts++
	p := float64(b.cap) * w / float64(b.cnt)
	if p > 1 {
		p = 1
	}
	victim := b.items[slot].item
	b.items[slot] = biasedItem[T]{item: item, weight: w, pAccept: p, kAt: b.accepts, seq: b.cnt}
	if b.hook != nil {
		b.hook(item, &victim)
	}
}

// SetHook installs the mutation observer (nil to remove).
func (b *Biased[T]) SetHook(h Hook[T]) { b.hook = h }

// Items returns the current weighted sample. Pi is reconstructed as
// pAccept · (1 − 1/n)^(K − k): the probability the item was accepted
// times the probability it survived every later eviction.
func (b *Biased[T]) Items() []Weighted[T] {
	out := make([]Weighted[T], len(b.items))
	logSurvive := math.Log1p(-1 / float64(b.cap))
	for i, it := range b.items {
		pi := it.pAccept * math.Exp(float64(b.accepts-it.kAt)*logSurvive)
		out[i] = Weighted[T]{Item: it.item, Weight: it.weight, Pi: pi, Seq: it.seq}
	}
	return out
}

// Count returns the number of items offered so far.
func (b *Biased[T]) Count() int64 { return b.cnt }

// Cap returns the capacity.
func (b *Biased[T]) Cap() int { return b.cap }

// AcceptProb returns the clamped acceptance probability the sampler
// would use for bias factor w at the current count.
func (b *Biased[T]) AcceptProb(w float64) float64 {
	if b.cnt < int64(b.cap) {
		return 1
	}
	p := float64(b.cap) * w / float64(b.cnt)
	if p > 1 {
		return 1
	}
	if p < 0 {
		return 0
	}
	return p
}
