package reservoir

import (
	"container/heap"
	"fmt"
	"math"

	"sciborq/internal/xrand"
)

// ES is the Efraimidis–Spirakis weighted reservoir (A-Res): each offered
// item receives key u^(1/w) and the n largest keys are kept. It yields
// exact probability-proportional-to-size sampling without replacement and
// serves as the reference baseline against the paper's Figure-6 sampler
// in the ablation benchmarks.
type ES[T any] struct {
	cap int
	cnt int64
	h   esHeap[T]
	rng *xrand.RNG
}

type esEntry[T any] struct {
	item   T
	weight float64
	key    float64
}

type esHeap[T any] []esEntry[T]

func (h esHeap[T]) Len() int           { return len(h) }
func (h esHeap[T]) Less(i, j int) bool { return h[i].key < h[j].key }
func (h esHeap[T]) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *esHeap[T]) Push(x any)        { *h = append(*h, x.(esEntry[T])) }
func (h *esHeap[T]) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// NewES returns a weighted reservoir of capacity n.
func NewES[T any](n int, rng *xrand.RNG) (*ES[T], error) {
	if n <= 0 {
		return nil, fmt.Errorf("reservoir: capacity must be positive, got %d", n)
	}
	if rng == nil {
		return nil, fmt.Errorf("reservoir: nil rng")
	}
	return &ES[T]{cap: n, h: make(esHeap[T], 0, n), rng: rng}, nil
}

// Offer presents one item with weight w (> 0; items with w <= 0 are
// never sampled).
func (e *ES[T]) Offer(item T, w float64) {
	e.cnt++
	if !(w > 0) || math.IsNaN(w) {
		return
	}
	key := math.Pow(e.rng.Float64(), 1/w)
	if len(e.h) < e.cap {
		heap.Push(&e.h, esEntry[T]{item: item, weight: w, key: key})
		return
	}
	if key > e.h[0].key {
		e.h[0] = esEntry[T]{item: item, weight: w, key: key}
		heap.Fix(&e.h, 0)
	}
}

// Items returns the sampled items with their weights.
func (e *ES[T]) Items() []Weighted[T] {
	out := make([]Weighted[T], len(e.h))
	for i, en := range e.h {
		out[i] = Weighted[T]{Item: en.item, Weight: en.weight}
	}
	return out
}

// Count returns the number of items offered so far.
func (e *ES[T]) Count() int64 { return e.cnt }

// Cap returns the capacity.
func (e *ES[T]) Cap() int { return e.cap }
