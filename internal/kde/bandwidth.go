package kde

import (
	"fmt"
	"math"
	"sort"

	"sciborq/internal/stats"
)

// SilvermanBandwidth returns Silverman's rule-of-thumb bandwidth
// h = 0.9 · min(σ̂, IQR/1.34) · n^(−1/5); the "carefully chosen"
// bandwidth behind the red curves of Figure 4.
func SilvermanBandwidth(xs []float64) (float64, error) {
	if len(xs) < 2 {
		return 0, fmt.Errorf("kde: bandwidth selection needs >= 2 observations, got %d", len(xs))
	}
	var m stats.Moments
	m.ObserveAll(xs)
	sigma := m.StdDev()
	iqr := IQR(xs)
	spread := sigma
	if alt := iqr / 1.34; alt > 0 && alt < spread {
		spread = alt
	}
	if spread == 0 {
		return 0, fmt.Errorf("kde: degenerate data (zero spread)")
	}
	return 0.9 * spread * math.Pow(float64(len(xs)), -0.2), nil
}

// ScottBandwidth returns Scott's rule h = 1.06 · σ̂ · n^(−1/5).
func ScottBandwidth(xs []float64) (float64, error) {
	if len(xs) < 2 {
		return 0, fmt.Errorf("kde: bandwidth selection needs >= 2 observations, got %d", len(xs))
	}
	var m stats.Moments
	m.ObserveAll(xs)
	if m.StdDev() == 0 {
		return 0, fmt.Errorf("kde: degenerate data (zero spread)")
	}
	return 1.06 * m.StdDev() * math.Pow(float64(len(xs)), -0.2), nil
}

// Smoothing factors reproducing the green (oversmoothed) and blue
// (undersmoothed) curves of Figure 4: the reference bandwidth scaled up
// and down by a visible factor.
const (
	OversmoothFactor  = 6.0
	UndersmoothFactor = 1.0 / 6.0
)

// IQR returns the interquartile range of xs (empty input gives 0).
func IQR(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return quantileSorted(s, 0.75) - quantileSorted(s, 0.25)
}

// quantileSorted returns the q-quantile of sorted data using linear
// interpolation between order statistics.
func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Quantile returns the q-quantile of xs (copied and sorted internally).
func Quantile(xs []float64, q float64) float64 {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return quantileSorted(s, q)
}
