package kde

import (
	"fmt"

	"sciborq/internal/stats"
)

// Binned2D extends the paper's f̆ estimator to a joint two-dimensional
// density over a Histogram2D (the multi-dimensional histograms named as
// future work in §6):
//
//	f̆(x, y) = 1/(N·wx·wy) Σ_cells c · φ((x−mx)/wx) · φ((y−my)/wy)
//
// Evaluation is O(number of non-empty cells), independent of N. Unlike
// the product of two 1-D f̆ estimates, the joint estimator preserves the
// correlation between the attributes: interest at (a₁, b₁) and (a₂, b₂)
// does not leak onto the phantom cross-products (a₁, b₂) and (a₂, b₁).
type Binned2D struct {
	H *stats.Histogram2D
	K Kernel
}

// NewBinned2D wraps a 2-D histogram as a joint f̆ estimator.
func NewBinned2D(h *stats.Histogram2D, k Kernel) (*Binned2D, error) {
	if h == nil {
		return nil, fmt.Errorf("kde: nil 2D histogram")
	}
	if k == nil {
		k = Gaussian{}
	}
	return &Binned2D{H: h, K: k}, nil
}

// Eval returns f̆(x, y); 0 when nothing has been observed. Cells beyond
// the kernel's numeric support in either dimension are skipped.
func (b *Binned2D) Eval(x, y float64) float64 {
	h := b.H
	if h.N == 0 {
		return 0
	}
	reachX := cutoff(b.K) * h.WidthX
	reachY := cutoff(b.K) * h.WidthY
	var s float64
	for i := range h.Cells {
		c := &h.Cells[i]
		if c.Count == 0 {
			continue
		}
		dx := x - c.MeanX
		if dx > reachX || dx < -reachX {
			continue
		}
		dy := y - c.MeanY
		if dy > reachY || dy < -reachY {
			continue
		}
		s += float64(c.Count) *
			b.K.Density(dx/h.WidthX) *
			b.K.Density(dy/h.WidthY)
	}
	return s / (float64(h.N) * h.WidthX * h.WidthY)
}
