package kde

import (
	"math"
	"testing"

	"sciborq/internal/stats"
	"sciborq/internal/xrand"
)

func TestNewBinned2DValidation(t *testing.T) {
	if _, err := NewBinned2D(nil, nil); err == nil {
		t.Fatal("nil histogram accepted")
	}
	h := stats.MustNewHistogram2D(0, 1, 2, 0, 1, 2)
	b, err := NewBinned2D(h, nil)
	if err != nil {
		t.Fatal(err)
	}
	if b.Eval(0.5, 0.5) != 0 {
		t.Fatal("empty estimator nonzero")
	}
}

func TestBinned2DIntegratesToOne(t *testing.T) {
	h := stats.MustNewHistogram2D(0, 10, 10, 0, 10, 10)
	r := xrand.New(7)
	for i := 0; i < 5000; i++ {
		h.Observe(3+r.NormFloat64(), 7+r.NormFloat64())
	}
	b, _ := NewBinned2D(h, Gaussian{})
	// 2-D Simpson via nested 1-D integration.
	inner := func(x float64) float64 {
		return Integrate(func(y float64) float64 { return b.Eval(x, y) }, -5, 15, 200)
	}
	total := Integrate(inner, -5, 15, 200)
	if math.Abs(total-1) > 0.01 {
		t.Fatalf("joint density integral = %v", total)
	}
}

func TestBinned2DPreservesCorrelation(t *testing.T) {
	// Interest at (2, 2) and (8, 8) only. The joint f̆ must be high at
	// the true foci and low at the cross-products (2, 8) / (8, 2); the
	// product of the marginals cannot tell them apart.
	h := stats.MustNewHistogram2D(0, 10, 10, 0, 10, 10)
	r := xrand.New(9)
	for i := 0; i < 2000; i++ {
		if i%2 == 0 {
			h.Observe(2+r.NormFloat64()*0.5, 2+r.NormFloat64()*0.5)
		} else {
			h.Observe(8+r.NormFloat64()*0.5, 8+r.NormFloat64()*0.5)
		}
	}
	joint, _ := NewBinned2D(h, Gaussian{})
	mx := h.MarginalX()
	// The data is symmetric, so the Y marginal equals the X marginal.
	bx, _ := NewBinned(mx, Gaussian{})

	focusJoint := joint.Eval(2, 2)
	crossJoint := joint.Eval(2, 8)
	if focusJoint < 20*crossJoint {
		t.Fatalf("joint estimator leaks onto cross-product: focus %v vs cross %v", focusJoint, crossJoint)
	}
	// Product of marginals: cross-product indistinguishable from focus.
	prodFocus := bx.Eval(2) * bx.Eval(2)
	prodCross := bx.Eval(2) * bx.Eval(8)
	if prodCross < prodFocus/4 {
		t.Fatalf("marginal product unexpectedly separated the foci: %v vs %v", prodFocus, prodCross)
	}
}

func TestBinned2DConstantInN(t *testing.T) {
	// Eval cost depends on non-empty cells, not N: correctness proxy —
	// density at the focus stays stable as N grows.
	mk := func(n int) float64 {
		h := stats.MustNewHistogram2D(0, 10, 10, 0, 10, 10)
		r := xrand.New(11)
		for i := 0; i < n; i++ {
			h.Observe(5+r.NormFloat64(), 5+r.NormFloat64())
		}
		b, _ := NewBinned2D(h, Gaussian{})
		return b.Eval(5, 5)
	}
	small, big := mk(500), mk(50000)
	if math.Abs(small-big) > 0.3*big {
		t.Fatalf("density estimate unstable across N: %v vs %v", small, big)
	}
}
