package kde

import (
	"math"
	"testing"

	"sciborq/internal/stats"
	"sciborq/internal/xrand"
)

// bimodal draws from the two-cluster shape of the paper's Figure 4
// predicate sets (interest around two sky regions).
func bimodal(r *xrand.RNG, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		if r.Float64() < 0.6 {
			xs[i] = 160 + r.NormFloat64()*8
		} else {
			xs[i] = 210 + r.NormFloat64()*5
		}
	}
	return xs
}

func TestGaussianKernel(t *testing.T) {
	g := Gaussian{}
	if math.Abs(g.Density(0)-1/math.Sqrt(2*math.Pi)) > 1e-15 {
		t.Fatalf("phi(0) = %v", g.Density(0))
	}
	if !math.IsInf(g.Support(), 1) {
		t.Fatal("gaussian support should be unbounded")
	}
	if g.Name() != "gaussian" {
		t.Fatal("name")
	}
	// Integrates to 1.
	got := Integrate(g.Density, -8, 8, 2000)
	if math.Abs(got-1) > 1e-6 {
		t.Fatalf("gaussian integral = %v", got)
	}
}

func TestEpanechnikovKernel(t *testing.T) {
	e := Epanechnikov{}
	if e.Density(-1.5) != 0 || e.Density(1.5) != 0 {
		t.Fatal("nonzero outside support")
	}
	if math.Abs(e.Density(0)-0.75) > 1e-15 {
		t.Fatalf("K(0) = %v", e.Density(0))
	}
	if e.Support() != 1 || e.Name() != "epanechnikov" {
		t.Fatal("metadata wrong")
	}
	got := Integrate(e.Density, -1, 1, 2000)
	if math.Abs(got-1) > 1e-6 {
		t.Fatalf("epanechnikov integral = %v", got)
	}
}

func TestNewFullValidation(t *testing.T) {
	if _, err := NewFull(nil, 1, nil); err == nil {
		t.Fatal("empty data accepted")
	}
	if _, err := NewFull([]float64{1}, 0, nil); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
	if _, err := NewFull([]float64{1}, -1, nil); err == nil {
		t.Fatal("negative bandwidth accepted")
	}
	f, err := NewFull([]float64{1}, 1, nil)
	if err != nil || f.K.Name() != "gaussian" {
		t.Fatal("default kernel should be gaussian")
	}
}

func TestFullIntegratesToOne(t *testing.T) {
	r := xrand.New(42)
	xs := bimodal(r, 400)
	h, err := SilvermanBandwidth(xs)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFull(xs, h, Gaussian{})
	if err != nil {
		t.Fatal(err)
	}
	got := Integrate(f.Eval, 60, 320, 4000)
	if math.Abs(got-1) > 1e-3 {
		t.Fatalf("full KDE integral = %v", got)
	}
}

func TestFullSinglePoint(t *testing.T) {
	f, err := NewFull([]float64{5}, 2, Gaussian{})
	if err != nil {
		t.Fatal(err)
	}
	// f̂(x) = φ((x-5)/2)/2.
	want := stats.NormPDF(0) / 2
	if got := f.Eval(5); math.Abs(got-want) > 1e-15 {
		t.Fatalf("Eval(5) = %v, want %v", got, want)
	}
}

func TestBinnedIntegratesToOne(t *testing.T) {
	// The paper proves ∫f̆ = 1; check numerically.
	r := xrand.New(7)
	xs := bimodal(r, 400)
	hist := stats.MustNewHistogram(120, 240, 30)
	hist.ObserveAll(xs)
	b, err := NewBinned(hist, Gaussian{})
	if err != nil {
		t.Fatal(err)
	}
	got := Integrate(b.Eval, 60, 320, 4000)
	if math.Abs(got-1) > 1e-3 {
		t.Fatalf("binned KDE integral = %v (paper: exactly 1)", got)
	}
}

func TestBinnedMatchesFullOnFigure4Workload(t *testing.T) {
	// Figure 4's key claim: f̆ is "almost identical" to f̂ with a
	// carefully chosen bandwidth. Check L1 distance is small.
	r := xrand.New(11)
	xs := bimodal(r, 400)
	hist := stats.MustNewHistogram(120, 240, 30)
	hist.ObserveAll(xs)
	b, _ := NewBinned(hist, Gaussian{})

	hFull := hist.Width // compare at the same bandwidth
	f, _ := NewFull(xs, hFull, Gaussian{})

	l1 := L1Distance(f.Eval, b.Eval, 100, 260, 2000)
	if l1 > 0.08 {
		t.Fatalf("L1(f̂, f̆) = %v; paper claims near-identical curves", l1)
	}
}

func TestBinnedEmptyHistogram(t *testing.T) {
	hist := stats.MustNewHistogram(0, 1, 4)
	b, err := NewBinned(hist, nil)
	if err != nil {
		t.Fatal(err)
	}
	if b.Eval(0.5) != 0 {
		t.Fatal("empty histogram should evaluate to 0")
	}
	if b.Beta() != 4 {
		t.Fatalf("Beta = %d", b.Beta())
	}
}

func TestBinnedNilHistogramRejected(t *testing.T) {
	if _, err := NewBinned(nil, nil); err == nil {
		t.Fatal("nil histogram accepted")
	}
}

func TestOversmoothFlattensModes(t *testing.T) {
	// Oversmoothing must reduce peak height; undersmoothing must raise
	// local roughness. This mirrors the green/blue curves of Figure 4.
	r := xrand.New(13)
	xs := bimodal(r, 400)
	href, err := SilvermanBandwidth(xs)
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := NewFull(xs, href, Gaussian{})
	over, _ := NewFull(xs, href*OversmoothFactor, Gaussian{})

	peak := func(f *Full) float64 {
		best := 0.0
		for x := 120.0; x <= 240; x += 0.5 {
			if v := f.Eval(x); v > best {
				best = v
			}
		}
		return best
	}
	if peak(over) >= peak(ref) {
		t.Fatalf("oversmoothed peak %v not below reference %v", peak(over), peak(ref))
	}
}

func TestUndersmoothIncreasesRoughness(t *testing.T) {
	r := xrand.New(17)
	xs := bimodal(r, 400)
	href, _ := SilvermanBandwidth(xs)
	ref, _ := NewFull(xs, href, Gaussian{})
	under, _ := NewFull(xs, href*UndersmoothFactor, Gaussian{})

	roughness := func(f *Full) float64 {
		// Total variation over a grid.
		var tv, prev float64
		first := true
		for x := 120.0; x <= 240; x += 0.5 {
			v := f.Eval(x)
			if !first {
				tv += math.Abs(v - prev)
			}
			prev, first = v, false
		}
		return tv
	}
	if roughness(under) <= roughness(ref) {
		t.Fatalf("undersmoothed TV %v not above reference %v", roughness(under), roughness(ref))
	}
}

func TestSilvermanAndScott(t *testing.T) {
	r := xrand.New(19)
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	hs, err := SilvermanBandwidth(xs)
	if err != nil {
		t.Fatal(err)
	}
	hc, err := ScottBandwidth(xs)
	if err != nil {
		t.Fatal(err)
	}
	// For standard normal data, both rules give roughly 1.06·n^(-1/5)·σ
	// (Scott) and 0.9·n^(-1/5)·min(σ, IQR/1.34) (Silverman).
	nPow := math.Pow(1000, -0.2)
	if math.Abs(hc-1.06*nPow) > 0.05 {
		t.Fatalf("Scott bandwidth = %v", hc)
	}
	if hs <= 0 || hs >= hc {
		t.Fatalf("Silverman %v should be below Scott %v for normal data", hs, hc)
	}
}

func TestBandwidthErrors(t *testing.T) {
	if _, err := SilvermanBandwidth([]float64{1}); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := SilvermanBandwidth([]float64{2, 2, 2}); err == nil {
		t.Fatal("zero-spread data accepted")
	}
	if _, err := ScottBandwidth([]float64{3, 3}); err == nil {
		t.Fatal("zero-spread data accepted by Scott")
	}
}

func TestIQRAndQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Quantile(xs, 0.5); math.Abs(got-5.5) > 1e-12 {
		t.Fatalf("median = %v", got)
	}
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 10 {
		t.Fatalf("q1 = %v", got)
	}
	iqr := IQR(xs)
	if math.Abs(iqr-4.5) > 1e-12 {
		t.Fatalf("IQR = %v", iqr)
	}
	if IQR([]float64{7}) != 0 {
		t.Fatal("IQR of singleton should be 0")
	}
}

func TestIntegrateKnown(t *testing.T) {
	got := Integrate(func(x float64) float64 { return x * x }, 0, 1, 100)
	if math.Abs(got-1.0/3.0) > 1e-9 {
		t.Fatalf("∫x² = %v", got)
	}
	// Odd steps are rounded up; tiny steps clamped.
	got = Integrate(func(x float64) float64 { return 1 }, 0, 2, 1)
	if math.Abs(got-2) > 1e-12 {
		t.Fatalf("∫1 = %v", got)
	}
}

func TestMaxAbsDiff(t *testing.T) {
	f := func(x float64) float64 { return x }
	g := func(x float64) float64 { return x + 0.5 }
	if got := MaxAbsDiff(f, g, 0, 1, 11); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("MaxAbsDiff = %v", got)
	}
	if got := MaxAbsDiff(f, f, 0, 1, 1); got != 0 {
		t.Fatalf("self diff = %v", got)
	}
}

func TestBinnedConstantTimeInBeta(t *testing.T) {
	// f̆ cost must not depend on N: evaluating with N=100 vs N=100000
	// observed values touches the same β bins. We check correctness of
	// the independence, not wall time (bench E7 measures time).
	histSmall := stats.MustNewHistogram(0, 1, 16)
	histBig := stats.MustNewHistogram(0, 1, 16)
	r := xrand.New(23)
	for i := 0; i < 100; i++ {
		histSmall.Observe(r.Float64())
	}
	for i := 0; i < 100000; i++ {
		histBig.Observe(r.Float64())
	}
	bs, _ := NewBinned(histSmall, nil)
	bb, _ := NewBinned(histBig, nil)
	// Densities should both be near uniform 1.0 on [0,1].
	if math.Abs(bb.Eval(0.5)-1) > 0.15 {
		t.Fatalf("big-N uniform density at 0.5 = %v", bb.Eval(0.5))
	}
	if math.Abs(bs.Eval(0.5)-1) > 0.5 {
		t.Fatalf("small-N uniform density at 0.5 = %v", bs.Eval(0.5))
	}
}
