// Package kde implements the two kernel density estimators of SciBORQ §4:
//
//   - Full: the classical estimator f̂(x) = N⁻¹ Σ K_h(x − x_i) over all N
//     predicate-set values, O(N) per evaluation.
//   - Binned: the paper's f̆(x) = 1/(N·w) Σ_i c_i · φ((x − m_i)/w), which
//     replaces the N observations with the β (count, mean) bin statistics
//     of a Figure-5 histogram, O(β) — constant time per evaluation because
//     β is fixed. The bandwidth of f̆ is always the bin width w.
//
// Bandwidth selection for the full estimator (Silverman, Scott) and the
// over/under-smoothing factors used in Figure 4 are provided as well.
package kde

import (
	"fmt"
	"math"

	"sciborq/internal/stats"
)

// Kernel is a symmetric density used as the smoothing kernel K.
type Kernel interface {
	// Density returns K(u).
	Density(u float64) float64
	// Support returns the half-width beyond which K is (numerically)
	// zero; +Inf for kernels with unbounded support.
	Support() float64
	// Name returns the kernel's name.
	Name() string
}

// Gaussian is the standard normal kernel φ(u); the paper's choice.
type Gaussian struct{}

// Density implements Kernel.
func (Gaussian) Density(u float64) float64 { return stats.NormPDF(u) }

// Support implements Kernel. The Gaussian has unbounded support.
func (Gaussian) Support() float64 { return math.Inf(1) }

// Name implements Kernel.
func (Gaussian) Name() string { return "gaussian" }

// Epanechnikov is the mean-square-error optimal kernel
// K(u) = 3/4 (1 − u²) on [−1, 1].
type Epanechnikov struct{}

// Density implements Kernel.
func (Epanechnikov) Density(u float64) float64 {
	if u < -1 || u > 1 {
		return 0
	}
	return 0.75 * (1 - u*u)
}

// Support implements Kernel.
func (Epanechnikov) Support() float64 { return 1 }

// Name implements Kernel.
func (Epanechnikov) Name() string { return "epanechnikov" }

// Full is the classical kernel density estimator f̂ over the raw
// predicate-set values. Evaluation cost is O(N); SciBORQ uses it only as
// the fidelity reference for f̆ (Figure 4).
type Full struct {
	Xs        []float64
	Bandwidth float64
	K         Kernel
}

// NewFull builds a full KDE over xs with the given bandwidth.
func NewFull(xs []float64, bandwidth float64, k Kernel) (*Full, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("kde: full estimator needs at least one observation")
	}
	if !(bandwidth > 0) {
		return nil, fmt.Errorf("kde: bandwidth must be positive, got %g", bandwidth)
	}
	if k == nil {
		k = Gaussian{}
	}
	return &Full{Xs: xs, Bandwidth: bandwidth, K: k}, nil
}

// Eval returns f̂(x) = N⁻¹ Σ h⁻¹ K((x − x_i)/h).
func (f *Full) Eval(x float64) float64 {
	h := f.Bandwidth
	var s float64
	for _, xi := range f.Xs {
		s += f.K.Density((x - xi) / h)
	}
	return s / (float64(len(f.Xs)) * h)
}

// Binned is the paper's estimator f̆ built from a Figure-5 histogram:
// only the per-bin counts c_i and means m_i are used, and the bandwidth
// equals the bin width w, so evaluation is O(β).
type Binned struct {
	H *stats.Histogram
	K Kernel
}

// NewBinned wraps a histogram as the paper's f̆ estimator.
func NewBinned(h *stats.Histogram, k Kernel) (*Binned, error) {
	if h == nil {
		return nil, fmt.Errorf("kde: nil histogram")
	}
	if k == nil {
		k = Gaussian{}
	}
	return &Binned{H: h, K: k}, nil
}

// gaussCutoff truncates kernels with unbounded support: φ(8) ≈ 5e-15,
// far below any quantity the estimators resolve.
const gaussCutoff = 8.0

// cutoff returns the numeric support half-width of a kernel.
func cutoff(k Kernel) float64 {
	if s := k.Support(); !math.IsInf(s, 1) {
		return s
	}
	return gaussCutoff
}

// Eval returns f̆(x) = 1/(N·w) Σ_{i=1..β} c_i K((x − m_i)/w).
// It returns 0 when the histogram has observed nothing. Bins farther
// than the kernel's (numeric) support contribute nothing and are
// skipped.
func (b *Binned) Eval(x float64) float64 {
	h := b.H
	if h.N == 0 {
		return 0
	}
	w := h.Width
	reach := cutoff(b.K) * w
	var s float64
	for i := range h.Bins {
		bin := &h.Bins[i]
		if bin.Count == 0 {
			continue
		}
		d := x - bin.Mean
		if d > reach || d < -reach {
			continue
		}
		s += float64(bin.Count) * b.K.Density(d/w)
	}
	return s / (float64(h.N) * w)
}

// Beta returns the number of bins (the β of the paper).
func (b *Binned) Beta() int { return b.H.Beta() }

// Integrate numerically integrates an estimator over [lo, hi] with the
// composite Simpson rule using steps intervals (rounded up to even).
// The paper proves ∫f̆ = 1; tests verify it numerically through this.
func Integrate(f func(float64) float64, lo, hi float64, steps int) float64 {
	if steps < 2 {
		steps = 2
	}
	if steps%2 == 1 {
		steps++
	}
	h := (hi - lo) / float64(steps)
	s := f(lo) + f(hi)
	for i := 1; i < steps; i++ {
		x := lo + float64(i)*h
		if i%2 == 1 {
			s += 4 * f(x)
		} else {
			s += 2 * f(x)
		}
	}
	return s * h / 3
}

// MaxAbsDiff returns max |f(x) − g(x)| over an equally spaced grid of
// points on [lo, hi]; the fidelity metric for Figure 4 (f̆ vs f̂).
func MaxAbsDiff(f, g func(float64) float64, lo, hi float64, points int) float64 {
	if points < 2 {
		points = 2
	}
	step := (hi - lo) / float64(points-1)
	var worst float64
	for i := 0; i < points; i++ {
		x := lo + float64(i)*step
		if d := math.Abs(f(x) - g(x)); d > worst {
			worst = d
		}
	}
	return worst
}

// L1Distance returns ∫|f−g| over [lo, hi] via Simpson integration; a
// scale-free fidelity metric between two density estimates.
func L1Distance(f, g func(float64) float64, lo, hi float64, steps int) float64 {
	return Integrate(func(x float64) float64 { return math.Abs(f(x) - g(x)) }, lo, hi, steps)
}
