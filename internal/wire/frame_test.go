package wire

import (
	"bufio"
	"bytes"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"

	"sciborq/internal/column"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	payloads := map[byte][]byte{
		FrameQuery: []byte("SELECT 1"),
		FrameBye:   nil,
		FrameBatch: bytes.Repeat([]byte{0xAB}, 4096),
	}
	for typ, p := range payloads {
		if err := WriteFrame(w, typ, p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(buf.Bytes())
	var scratch []byte
	seen := 0
	for {
		typ, payload, ns, err := ReadFrame(r, MaxServerFrame, scratch)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		scratch = ns
		want := payloads[typ]
		if !bytes.Equal(payload, want) {
			t.Fatalf("frame 0x%02x: payload %d bytes, want %d", typ, len(payload), len(want))
		}
		seen++
	}
	if seen != len(payloads) {
		t.Fatalf("read %d frames, wrote %d", seen, len(payloads))
	}
}

func TestReadFrameRejectsOversized(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := WriteFrame(w, FrameQuery, make([]byte, 1024)); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	_, _, _, err := ReadFrame(bytes.NewReader(buf.Bytes()), 64, nil)
	var tooBig *ErrFrameTooLarge
	if err == nil || !asFrameTooLarge(err, &tooBig) {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
	if tooBig.Size != 1025 || tooBig.Max != 64 {
		t.Fatalf("wrong cap report: %+v", tooBig)
	}
}

func asFrameTooLarge(err error, out **ErrFrameTooLarge) bool {
	e, ok := err.(*ErrFrameTooLarge)
	if ok {
		*out = e
	}
	return ok
}

func TestReadFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := WriteFrame(w, FrameQuery, []byte("SELECT 1")); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	full := buf.Bytes()
	// Every strict prefix must fail with EOF (nothing read yet) or
	// ErrUnexpectedEOF (mid-frame), never a zero-error partial frame.
	for cut := 0; cut < len(full); cut++ {
		_, _, _, err := ReadFrame(bytes.NewReader(full[:cut]), MaxServerFrame, nil)
		if err == nil {
			t.Fatalf("prefix of %d bytes decoded without error", cut)
		}
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	h := &Header{
		RowCount: 1 << 40,
		Cols: []Col{
			{Name: "ra", Type: TypeFloat64},
			{Name: "objID", Type: TypeInt64},
			{Name: "type", Type: TypeString},
			{Name: "clean", Type: TypeBool},
		},
	}
	got, err := DecodeHeader(AppendHeader(nil, h))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, h) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, h)
	}
}

// buildTestCols returns one column of each type with n rows of
// deterministic values, including NaN/Inf edge floats.
func buildTestCols(n int) []column.Column {
	f := column.NewFloat64("f")
	i := column.NewInt64("i")
	s := column.NewString("s")
	b := column.NewBool("b")
	words := []string{"STAR", "GALAXY", "QSO", "UNKNOWN"}
	for k := 0; k < n; k++ {
		switch k % 7 {
		case 5:
			f.Append(math.NaN())
		case 6:
			f.Append(math.Inf(1))
		default:
			f.Append(float64(k) * 0.25)
		}
		i.Append(int64(k) - int64(n/2))
		s.Append(words[k%len(words)])
		b.Append(k%3 == 0)
	}
	return []column.Column{f, i, s, b}
}

func TestBatchRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 1000} {
		cols := buildTestCols(n)
		ba, err := DecodeBatch(AppendBatch(nil, cols, 0, n))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if ba.Rows != n || len(ba.Cols) != 4 {
			t.Fatalf("n=%d: decoded %d rows × %d cols", n, ba.Rows, len(ba.Cols))
		}
		f := cols[0].(*column.Float64Col)
		i := cols[1].(*column.Int64Col)
		s := cols[2].(*column.StringCol)
		b := cols[3].(*column.BoolCol)
		for k := 0; k < n; k++ {
			if math.Float64bits(ba.Cols[0].F64[k]) != math.Float64bits(f.Data[k]) {
				t.Fatalf("n=%d row %d: f64 %v != %v", n, k, ba.Cols[0].F64[k], f.Data[k])
			}
			if ba.Cols[1].I64[k] != i.Data[k] {
				t.Fatalf("n=%d row %d: i64 mismatch", n, k)
			}
			if ba.Cols[2].Str[k] != s.Word(s.Data[k]) {
				t.Fatalf("n=%d row %d: str mismatch", n, k)
			}
			if ba.Cols[3].Bool[k] != b.Data[k] {
				t.Fatalf("n=%d row %d: bool mismatch", n, k)
			}
		}
	}
}

func TestBatchSubRange(t *testing.T) {
	cols := buildTestCols(100)
	ba, err := DecodeBatch(AppendBatch(nil, cols, 37, 81))
	if err != nil {
		t.Fatal(err)
	}
	if ba.Rows != 44 {
		t.Fatalf("rows = %d, want 44", ba.Rows)
	}
	f := cols[0].(*column.Float64Col)
	for k := 0; k < 44; k++ {
		if math.Float64bits(ba.Cols[0].F64[k]) != math.Float64bits(f.Data[37+k]) {
			t.Fatalf("row %d not aligned to sub-range", k)
		}
	}
}

// TestDictPageLocal asserts the VARCHAR page ships only the words the
// batch references, not the column's full dictionary.
func TestDictPageLocal(t *testing.T) {
	s := column.NewString("s")
	for k := 0; k < 1000; k++ {
		s.Append(strings.Repeat("x", 1+k%50) + "-" + string(rune('a'+k%26)))
	}
	// The final 10 rows reference at most 10 distinct words; a batch
	// over them must be far smaller than one carrying all ~1000 words.
	small := AppendBatch(nil, []column.Column{s}, 990, 1000)
	big := AppendBatch(nil, []column.Column{s}, 0, 1000)
	if len(small) > len(big)/10 {
		t.Fatalf("batch-local dict not local: 10-row page is %d bytes vs %d for the full column", len(small), len(big))
	}
	ba, err := DecodeBatch(small)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 10; k++ {
		if want := s.Word(s.Data[990+k]); ba.Cols[0].Str[k] != want {
			t.Fatalf("row %d: %q != %q", k, ba.Cols[0].Str[k], want)
		}
	}
}

func TestEndRoundTrip(t *testing.T) {
	e := &End{Rows: 12345678901, ElapsedNs: 42e6, QueueNs: 7}
	got, err := DecodeEnd(AppendEnd(nil, e))
	if err != nil {
		t.Fatal(err)
	}
	if *got != *e {
		t.Fatalf("got %+v want %+v", got, e)
	}
}

func TestBoundedRoundTrip(t *testing.T) {
	a := &Bounded{
		Layer:      "impression-2",
		Exact:      false,
		BoundMet:   true,
		PromisedNs: 2_000_000,
		Estimates: []EstimateW{
			{Name: "n", Value: 1234.5, HalfWidth: 10.25, Confidence: 0.95, RelError: 0.0083, SampleRows: 400},
			{Name: "a", Value: math.Inf(1), HalfWidth: math.NaN(), Confidence: 0.9, Exact: true},
		},
		Trail: []TrailW{
			{Layer: "impression-2", Rows: 400, ElapsedNs: 90_000, Satisfied: false},
			{Layer: "impression-1", Rows: 4000, ElapsedNs: 700_000, Satisfied: true},
		},
	}
	got, err := DecodeBounded(AppendBounded(nil, a))
	if err != nil {
		t.Fatal(err)
	}
	// NaN breaks DeepEqual; compare the bits field-by-field where it
	// matters and the rest structurally.
	if got.Layer != a.Layer || got.BoundMet != a.BoundMet || got.PromisedNs != a.PromisedNs {
		t.Fatalf("scalar fields: %+v", got)
	}
	if len(got.Estimates) != 2 || len(got.Trail) != 2 {
		t.Fatalf("lengths: %+v", got)
	}
	if math.Float64bits(got.Estimates[1].HalfWidth) != math.Float64bits(a.Estimates[1].HalfWidth) {
		t.Fatal("NaN half-width did not survive the round trip")
	}
	if !reflect.DeepEqual(got.Trail, a.Trail) {
		t.Fatalf("trail: %+v", got.Trail)
	}
}

func TestErrorRoundTrip(t *testing.T) {
	e := &ErrorFrame{Code: "overloaded", Message: "queue full", RetryAfterNs: 125e6}
	got, err := DecodeError(AppendError(nil, e))
	if err != nil {
		t.Fatal(err)
	}
	if *got != *e {
		t.Fatalf("got %+v want %+v", got, e)
	}
}

// FuzzFrame: every decoder must survive arbitrary bytes without
// panicking or unbounded allocation, and anything it accepts must
// re-encode to a payload it accepts again with the same decoded value
// (decode → encode → decode round-trip).
func FuzzFrame(f *testing.F) {
	cols := buildTestCols(64)
	f.Add(byte(FrameHeader), AppendHeader(nil, &Header{RowCount: 64, Cols: []Col{{Name: "f", Type: TypeFloat64}}}))
	f.Add(byte(FrameBatch), AppendBatch(nil, cols, 0, 64))
	f.Add(byte(FrameEnd), AppendEnd(nil, &End{Rows: 64, ElapsedNs: 1, QueueNs: 2}))
	f.Add(byte(FrameBounded), AppendBounded(nil, &Bounded{Layer: "l", Estimates: []EstimateW{{Name: "n"}}}))
	f.Add(byte(FrameError), AppendError(nil, &ErrorFrame{Code: "c", Message: "m"}))
	f.Add(byte(FrameBatch), []byte{0xFF, 0xFF, 0xFF, 0x7F})
	f.Fuzz(func(t *testing.T, typ byte, payload []byte) {
		switch typ % 5 {
		case 0:
			h, err := DecodeHeader(payload)
			if err != nil {
				return
			}
			h2, err := DecodeHeader(AppendHeader(nil, h))
			if err != nil || !reflect.DeepEqual(h, h2) {
				t.Fatalf("header re-decode: %v", err)
			}
		case 1:
			ba, err := DecodeBatch(payload)
			if err != nil {
				return
			}
			// Re-encoding a decoded batch needs columns, which the
			// decoder deliberately does not reconstruct; assert shape
			// invariants instead.
			for _, c := range ba.Cols {
				n := len(c.F64) + len(c.I64) + len(c.Bool) + len(c.Str)
				if n != ba.Rows {
					t.Fatalf("block rows %d != batch rows %d", n, ba.Rows)
				}
			}
		case 2:
			e, err := DecodeEnd(payload)
			if err != nil {
				return
			}
			e2, err := DecodeEnd(AppendEnd(nil, e))
			if err != nil || *e != *e2 {
				t.Fatalf("end re-decode: %v", err)
			}
		case 3:
			a, err := DecodeBounded(payload)
			if err != nil {
				return
			}
			raw := AppendBounded(nil, a)
			if _, err := DecodeBounded(raw); err != nil {
				t.Fatalf("bounded re-decode: %v", err)
			}
		case 4:
			e, err := DecodeError(payload)
			if err != nil {
				return
			}
			e2, err := DecodeError(AppendError(nil, e))
			if err != nil || *e != *e2 {
				t.Fatalf("error re-decode: %v", err)
			}
		}
	})
}

// FuzzFrameStream feeds arbitrary bytes to the frame reader itself: it
// must return frames or errors, never panic, and never allocate beyond
// the declared cap.
func FuzzFrameStream(f *testing.F) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	WriteFrame(w, FrameQuery, []byte("SELECT COUNT(*) FROM T"))
	WriteFrame(w, FrameBye, nil)
	w.Flush()
	f.Add(buf.Bytes())
	f.Fuzz(func(t *testing.T, stream []byte) {
		r := bytes.NewReader(stream)
		var scratch []byte
		for {
			_, _, ns, err := ReadFrame(r, 1<<16, scratch)
			if err != nil {
				return
			}
			scratch = ns
		}
	})
}

// TestI64PageFOR exercises the BIGINT frame-of-reference encoding
// across its width tiers and the raw fallback, including the extremes
// where the signed span overflows.
func TestI64PageFOR(t *testing.T) {
	cases := []struct {
		name string
		vals []int64
		// maxBytes bounds the encoded page size (tag + headers + deltas);
		// 0 means no bound asserted.
		maxBytes int
	}{
		{"constant", []int64{42, 42, 42, 42, 42}, 1 + 8 + 1},
		{"dense-ids", func() []int64 {
			v := make([]int64, 1000)
			for i := range v {
				v[i] = 1237648721000000000 + int64(i)*7919
			}
			return v
		}(), 1 + 8 + 1 + 1000*4},
		{"byte-span", []int64{-100, -90, -1, 100, 155}, 1 + 8 + 1 + 5},
		{"negative-wide", []int64{-5_000_000_000, -4_999_000_000}, 1 + 8 + 1 + 2*4},
		{"full-range", []int64{math.MinInt64, math.MaxInt64}, 0},
		{"near-full-span", []int64{math.MinInt64 + 1, math.MaxInt64 - 1}, 0},
		{"empty", nil, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			col := column.NewInt64From("v", tc.vals)
			page := AppendBatch(nil, []column.Column{col}, 0, len(tc.vals))
			if tc.maxBytes > 0 {
				// 4 rows + 2 ncols + 1 type byte of batch framing.
				if got := len(page) - 7; got > tc.maxBytes {
					t.Fatalf("page is %d bytes, want <= %d", got, tc.maxBytes)
				}
			}
			ba, err := DecodeBatch(page)
			if err != nil {
				t.Fatal(err)
			}
			if len(ba.Cols[0].I64) != len(tc.vals) {
				t.Fatalf("decoded %d values, want %d", len(ba.Cols[0].I64), len(tc.vals))
			}
			for i, v := range tc.vals {
				if ba.Cols[0].I64[i] != v {
					t.Fatalf("value %d: decoded %d, want %d", i, ba.Cols[0].I64[i], v)
				}
			}
		})
	}
}
