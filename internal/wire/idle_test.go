package wire

import (
	"net"
	"testing"
	"time"

	"sciborq/internal/faultinject"
	"sciborq/internal/server"
)

// TestWireIdleSessionReaped is the regression test for the idle-session
// leak: before IdleTimeout existed, serveConn blocked in read() with no
// deadline, so a silent client parked its goroutine and session state
// forever. The connection must now be closed within the idle timeout,
// counted in idle_closed, and the same must hold for a peer that
// connects and never even sends Hello.
func TestWireIdleSessionReaped(t *testing.T) {
	db := newTestDB(t, 1)
	const idle = 200 * time.Millisecond
	_, ws, addr := startWire(t, db, server.Config{MaxInFlight: 4}, Config{IdleTimeout: idle})

	c := dialT(t, addr, "")
	if _, err := c.Query("SELECT COUNT(*) AS n FROM PhotoObjAll"); err != nil {
		t.Fatal(err)
	}

	// Go silent mid-session. The server must close the connection on its
	// own; the client observes it as a read error well before the 5s cap.
	start := time.Now()
	if _, _, err := c.read(); err == nil {
		t.Fatal("read after going idle: got a frame, want connection closed")
	}
	if waited := time.Since(start); waited > 25*idle {
		t.Fatalf("idle connection reaped after %v, want ~%v", waited, idle)
	}

	// A connection that never sends Hello must be reaped the same way:
	// the handshake read runs under the same deadline.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	raw.SetReadDeadline(time.Now().Add(25 * idle))
	if _, err := raw.Read(make([]byte, 1)); err == nil {
		t.Fatal("silent pre-Hello connection: got bytes, want close")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("silent pre-Hello connection not reaped within deadline")
	}

	deadline := time.Now().Add(5 * time.Second)
	for ws.Stats().ConnsOpen != 0 || ws.Stats().IdleClosed < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("stats after reap: %+v, want conns_open=0 idle_closed>=2", ws.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWireActiveSessionNotReaped pins the other half of the contract:
// the idle deadline governs only the gap between requests. A request
// that takes longer than IdleTimeout to serve (here via an injected
// execution latency) and a client that drains the batch stream slowly
// must both survive, and the session must accept the next request.
func TestWireActiveSessionNotReaped(t *testing.T) {
	db := newTestDB(t, 1)
	const idle = 250 * time.Millisecond
	_, ws, addr := startWire(t, db, server.Config{MaxInFlight: 4},
		Config{IdleTimeout: idle, BatchRows: 256})

	faultinject.Enable(faultinject.NewPlan(faultinject.Fault{
		Point: faultinject.PointAdmission, Hit: 1,
		Kind: faultinject.KindLatency, Latency: 3 * idle,
	}))
	defer faultinject.Disable()

	c := dialT(t, addr, "")

	// First request: held in execution for 3×IdleTimeout by the fault,
	// then streamed in 256-row batches which the client drains slowly.
	c.enc = appendStr(c.enc[:0], "SELECT objID, ra, dec FROM PhotoObjAll WHERE ra >= 0")
	if err := c.send(FrameQuery, c.enc); err != nil {
		t.Fatal(err)
	}
	frames := 0
	for {
		typ, payload, err := c.read()
		if err != nil {
			t.Fatalf("active session dropped after %d frames: %v", frames, err)
		}
		frames++
		if typ == FrameError {
			se, _ := DecodeError(payload)
			t.Fatalf("query failed: %+v", se)
		}
		if typ == FrameEnd {
			break
		}
		time.Sleep(3 * time.Millisecond)
	}
	if frames < 3 {
		t.Fatalf("expected a multi-frame stream, got %d frames", frames)
	}

	// The session stayed up through a request that outlived IdleTimeout;
	// it must still serve the next one.
	if _, err := c.Query("SELECT COUNT(*) AS n FROM PhotoObjAll"); err != nil {
		t.Fatalf("follow-up query on surviving session: %v", err)
	}
	if got := ws.Stats().IdleClosed; got != 0 {
		t.Fatalf("idle_closed = %d, want 0 (no idle reaps in this test)", got)
	}
}
