package wire

import (
	"math"
	"testing"
)

// roundTripI64 encodes vals as a BIGINT page and decodes it back,
// returning the decoded values plus the page's encoding tag and (for
// FoR pages) the delta width byte.
func roundTripI64(t *testing.T, vals []int64) (got []int64, enc byte, width int) {
	t.Helper()
	b := appendI64Page(nil, vals)
	enc = b[0]
	if enc == i64EncFOR {
		width = int(b[9])
	} else {
		width = 8
	}
	c := cursor{p: b}
	blk, err := decodeI64Page(&c, len(vals))
	if err != nil {
		t.Fatalf("decode %v: %v", vals, err)
	}
	if err := c.done(); err != nil {
		t.Fatalf("decode %v: trailing bytes: %v", vals, err)
	}
	return blk.I64, enc, width
}

// TestI64PageBoundarySpans pins the frame-of-reference width selection
// at the exact span boundaries. A span of 2^k−1 is the largest that
// fits k/8 bytes — the maximum delta is the span itself — and a span of
// 2^k must spill to the next width. An off-by-one here silently
// truncates the page maximum's delta, decoding it as the page minimum.
func TestI64PageBoundarySpans(t *testing.T) {
	cases := []struct {
		name      string
		lo        int64
		span      uint64
		wantEnc   byte
		wantWidth int
	}{
		{"span0", 42, 0, i64EncFOR, 0},
		{"span1", 42, 1, i64EncFOR, 1},
		{"span2^8-1", 0, 1<<8 - 1, i64EncFOR, 1},
		{"span2^8", 0, 1 << 8, i64EncFOR, 2},
		{"span2^16-1", -7, 1<<16 - 1, i64EncFOR, 2},
		{"span2^16", -7, 1 << 16, i64EncFOR, 4},
		{"span2^32-1", 1e15, 1<<32 - 1, i64EncFOR, 4},
		{"span2^32", 1e15, 1 << 32, i64EncRaw, 8},

		// Bases around MinInt64: the span subtraction must be performed
		// in two's complement — (lo + span) − lo overflows the signed
		// difference whenever the page brackets the integer range.
		{"minInt64 span2^8-1", math.MinInt64, 1<<8 - 1, i64EncFOR, 1},
		{"minInt64 span2^32-1", math.MinInt64, 1<<32 - 1, i64EncFOR, 4},
		{"minInt64 to maxInt64", math.MinInt64, math.MaxUint64, i64EncRaw, 8},
		{"negative to positive", -(1 << 31), 1<<32 - 1, i64EncFOR, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			hi := int64(uint64(tc.lo) + tc.span)
			vals := []int64{tc.lo, hi, tc.lo, hi}
			if tc.span > 1 {
				vals = append(vals, int64(uint64(tc.lo)+tc.span/2))
			}
			got, enc, width := roundTripI64(t, vals)
			if enc != tc.wantEnc || width != tc.wantWidth {
				t.Fatalf("enc=%d width=%d, want enc=%d width=%d", enc, width, tc.wantEnc, tc.wantWidth)
			}
			if len(got) != len(vals) {
				t.Fatalf("decoded %d values, want %d", len(got), len(vals))
			}
			for i := range vals {
				if got[i] != vals[i] {
					t.Fatalf("value %d: decoded %d, want %d", i, got[i], vals[i])
				}
			}
		})
	}
}

// TestI64PageExtremes round-trips pages that sit entirely at the edges
// of the int64 range, where any signed intermediate would overflow.
func TestI64PageExtremes(t *testing.T) {
	pages := [][]int64{
		{math.MinInt64},
		{math.MaxInt64},
		{math.MinInt64, math.MinInt64 + 1},
		{math.MaxInt64 - 255, math.MaxInt64},
		{math.MinInt64, math.MaxInt64},
		{math.MinInt64, 0, math.MaxInt64},
		{-1, 1}, // span 2 crossing zero
	}
	for _, vals := range pages {
		got, _, _ := roundTripI64(t, vals)
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("page %v: value %d decoded as %d", vals, i, got[i])
			}
		}
	}
}
