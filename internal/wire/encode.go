package wire

import (
	"encoding/binary"
	"fmt"

	"sciborq/internal/column"
)

// Col describes one result column in a header frame.
type Col struct {
	Name string
	Type byte
}

// Header opens an exact result stream: the column layout and the total
// (untruncated) row count, known up front because the engine
// materialises exact results before serving.
type Header struct {
	Cols     []Col
	RowCount uint64
}

// maxCols caps the column count a header may declare; result schemas
// are small, and the cap keeps a forged header from driving decoder
// allocations.
const maxCols = 4096

// AppendHeader encodes h.
func AppendHeader(b []byte, h *Header) []byte {
	b = appendU64(b, h.RowCount)
	b = appendU16(b, uint16(len(h.Cols)))
	for _, c := range h.Cols {
		b = appendStr(b, c.Name)
		b = appendU8(b, c.Type)
	}
	return b
}

// DecodeHeader decodes a FrameHeader payload.
func DecodeHeader(p []byte) (*Header, error) {
	c := cursor{p: p}
	h := &Header{RowCount: c.u64()}
	n := int(c.u16())
	if n > maxCols || n > c.remaining() {
		return nil, fmt.Errorf("wire: header declares %d columns", n)
	}
	h.Cols = make([]Col, n)
	for i := range h.Cols {
		h.Cols[i] = Col{Name: c.str(), Type: c.u8()}
		if h.Cols[i].Type > TypeBool {
			return nil, fmt.Errorf("wire: unknown column type %d", h.Cols[i].Type)
		}
	}
	if err := c.done(); err != nil {
		return nil, err
	}
	return h, nil
}

// ColBlock is one decoded column of a batch; exactly one of the typed
// slices is populated, matching Type.
type ColBlock struct {
	Type byte
	F64  []float64
	I64  []int64
	Bool []bool
	Str  []string
}

// Batch is a decoded columnar batch.
type Batch struct {
	Rows int
	Cols []ColBlock
}

// AppendBatch encodes rows [lo, hi) of cols as one columnar batch:
//
//	u32 rows | u16 ncols | ncols × block
//
// where a block is u8 type code followed by the typed page —
// little-endian raw pages for DOUBLE/BIGINT, a bitmap for BOOLEAN, and
// a per-batch dictionary page for VARCHAR (uvarint dict size, dict
// words, u8 code width, then one 1/2/4-byte code per row). The VARCHAR
// dictionary is local to the batch — only words the batch actually
// references ship, re-coded to dense local ids — so a huge table
// dictionary never rides along with a small result.
func AppendBatch(b []byte, cols []column.Column, lo, hi int) []byte {
	b = appendU32(b, uint32(hi-lo))
	b = appendU16(b, uint16(len(cols)))
	for _, c := range cols {
		switch col := c.(type) {
		case *column.Float64Col:
			b = appendU8(b, TypeFloat64)
			b = appendF64Page(b, col.Data[lo:hi])
		case *column.Int64Col:
			b = appendU8(b, TypeInt64)
			b = appendI64Page(b, col.Data[lo:hi])
		case *column.BoolCol:
			b = appendU8(b, TypeBool)
			b = appendBitmap(b, col.Data[lo:hi])
		case *column.StringCol:
			b = appendU8(b, TypeString)
			b = appendDictPage(b, col, lo, hi)
		default:
			panic(fmt.Sprintf("wire: unencodable column type %T", c))
		}
	}
	return b
}

func appendF64Page(b []byte, vals []float64) []byte {
	for _, v := range vals {
		b = appendF64(b, v)
	}
	return b
}

// BIGINT page encodings (the leading tag byte of the page).
const (
	i64EncRaw = 0 // rows × i64
	i64EncFOR = 1 // i64 base | u8 delta width (0/1/2/4) | rows × width
)

// appendI64Page writes a BIGINT page, choosing between a raw page and
// frame-of-reference encoding: when the page's value span fits 0, 1, 2,
// or 4 bytes, values ship as fixed-width unsigned deltas from the page
// minimum. Dense id columns (objID, mjd) and aggregate results collapse
// from 8 bytes/row to their actual spread; pages that genuinely use the
// full 64-bit range fall back to raw.
func appendI64Page(b []byte, vals []int64) []byte {
	if len(vals) == 0 {
		return appendU8(b, i64EncRaw)
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	// Two's-complement subtraction: correct even for the full int64
	// range, where the signed difference would overflow.
	span := uint64(hi) - uint64(lo)
	var width byte
	switch {
	case span == 0:
		width = 0
	case span < 1<<8:
		width = 1
	case span < 1<<16:
		width = 2
	case span < 1<<32:
		width = 4
	default:
		b = appendU8(b, i64EncRaw)
		for _, v := range vals {
			b = appendI64(b, v)
		}
		return b
	}
	b = appendU8(b, i64EncFOR)
	b = appendI64(b, lo)
	b = appendU8(b, width)
	for _, v := range vals {
		delta := uint64(v) - uint64(lo)
		switch width {
		case 1:
			b = appendU8(b, byte(delta))
		case 2:
			b = appendU16(b, uint16(delta))
		case 4:
			b = appendU32(b, uint32(delta))
		}
	}
	return b
}

func appendBitmap(b []byte, vals []bool) []byte {
	nbytes := (len(vals) + 7) / 8
	start := len(b)
	b = append(b, make([]byte, nbytes)...)
	for i, v := range vals {
		if v {
			b[start+i/8] |= 1 << (i % 8)
		}
	}
	return b
}

// appendDictPage builds the batch-local VARCHAR dictionary: one pass
// over the batch's codes collects the used words in first-use order,
// a second writes the re-coded rows at the narrowest width that fits.
func appendDictPage(b []byte, col *column.StringCol, lo, hi int) []byte {
	codes := col.Data[lo:hi]
	local := make(map[int32]uint32, 16)
	var words []string
	for _, code := range codes {
		if _, ok := local[code]; !ok {
			local[code] = uint32(len(words))
			words = append(words, col.Word(code))
		}
	}
	b = binary.AppendUvarint(b, uint64(len(words)))
	for _, w := range words {
		b = appendStr(b, w)
	}
	width := codeWidth(len(words))
	b = appendU8(b, width)
	for _, code := range codes {
		id := local[code]
		switch width {
		case 1:
			b = appendU8(b, byte(id))
		case 2:
			b = appendU16(b, uint16(id))
		default:
			b = appendU32(b, id)
		}
	}
	return b
}

// codeWidth returns the narrowest code byte width for a dictionary of n
// words. An empty dictionary (zero-row batch) still needs a valid width.
func codeWidth(n int) byte {
	switch {
	case n <= 1<<8:
		return 1
	case n <= 1<<16:
		return 2
	default:
		return 4
	}
}

// maxBatchRows caps the row count one batch may declare — a full morsel
// with generous headroom, far below anything that could make a forged
// count allocate unboundedly before the per-page remaining() checks.
const maxBatchRows = 1 << 22

// DecodeBatch decodes a FrameBatch payload. VARCHAR blocks come back as
// materialised strings: the decoder resolves dictionary codes so
// callers never see the page layout.
func DecodeBatch(p []byte) (*Batch, error) {
	c := cursor{p: p}
	rows := int(c.u32())
	ncols := int(c.u16())
	if c.bad || rows > maxBatchRows || ncols > maxCols {
		return nil, fmt.Errorf("wire: batch declares %d rows × %d columns", rows, ncols)
	}
	ba := &Batch{Rows: rows, Cols: make([]ColBlock, 0, minInt(ncols, c.remaining()+1))}
	for i := 0; i < ncols; i++ {
		blk, err := decodeBlock(&c, rows)
		if err != nil {
			return nil, err
		}
		ba.Cols = append(ba.Cols, blk)
	}
	if err := c.done(); err != nil {
		return nil, err
	}
	return ba, nil
}

func decodeBlock(c *cursor, rows int) (ColBlock, error) {
	typ := c.u8()
	switch typ {
	case TypeFloat64:
		if c.remaining() < rows*8 {
			return ColBlock{}, fmt.Errorf("wire: truncated DOUBLE page")
		}
		vals := make([]float64, rows)
		for i := range vals {
			vals[i] = c.f64()
		}
		return ColBlock{Type: typ, F64: vals}, nil
	case TypeInt64:
		return decodeI64Page(c, rows)
	case TypeBool:
		nbytes := (rows + 7) / 8
		bits := c.bytes(nbytes)
		if bits == nil {
			return ColBlock{}, fmt.Errorf("wire: truncated BOOLEAN bitmap")
		}
		vals := make([]bool, rows)
		for i := range vals {
			vals[i] = bits[i/8]&(1<<(i%8)) != 0
		}
		return ColBlock{Type: typ, Bool: vals}, nil
	case TypeString:
		return decodeDictBlock(c, rows)
	default:
		return ColBlock{}, fmt.Errorf("wire: unknown block type %d", typ)
	}
}

// decodeI64Page decodes a tagged BIGINT page (raw or frame-of-reference).
func decodeI64Page(c *cursor, rows int) (ColBlock, error) {
	switch enc := c.u8(); enc {
	case i64EncRaw:
		if c.remaining() < rows*8 {
			return ColBlock{}, fmt.Errorf("wire: truncated BIGINT page")
		}
		vals := make([]int64, rows)
		for i := range vals {
			vals[i] = c.i64()
		}
		return ColBlock{Type: TypeInt64, I64: vals}, nil
	case i64EncFOR:
		base := uint64(c.i64())
		width := int(c.u8())
		switch width {
		case 0, 1, 2, 4:
		default:
			return ColBlock{}, fmt.Errorf("wire: BIGINT delta width %d", width)
		}
		if c.bad || c.remaining() < rows*width {
			return ColBlock{}, fmt.Errorf("wire: truncated BIGINT delta page")
		}
		vals := make([]int64, rows)
		for i := range vals {
			var delta uint64
			switch width {
			case 1:
				delta = uint64(c.u8())
			case 2:
				delta = uint64(c.u16())
			case 4:
				delta = uint64(c.u32())
			}
			vals[i] = int64(base + delta)
		}
		return ColBlock{Type: TypeInt64, I64: vals}, nil
	default:
		return ColBlock{}, fmt.Errorf("wire: unknown BIGINT page encoding %d", enc)
	}
}

func decodeDictBlock(c *cursor, rows int) (ColBlock, error) {
	dictN := c.uvarint()
	if c.bad || dictN > uint64(c.remaining()) {
		return ColBlock{}, fmt.Errorf("wire: dictionary declares %d words", dictN)
	}
	words := make([]string, dictN)
	for i := range words {
		words[i] = c.str()
	}
	width := int(c.u8())
	switch width {
	case 1, 2, 4:
	default:
		return ColBlock{}, fmt.Errorf("wire: dictionary code width %d", width)
	}
	if c.remaining() < rows*width {
		return ColBlock{}, fmt.Errorf("wire: truncated VARCHAR code page")
	}
	vals := make([]string, rows)
	for i := range vals {
		var id uint32
		switch width {
		case 1:
			id = uint32(c.u8())
		case 2:
			id = uint32(c.u16())
		default:
			id = c.u32()
		}
		if uint64(id) >= dictN {
			return ColBlock{}, fmt.Errorf("wire: dictionary code %d out of range (%d words)", id, dictN)
		}
		vals[i] = words[id]
	}
	return ColBlock{Type: TypeString, Str: vals}, nil
}

// End closes one result: the untruncated row count and the server-side
// timings the HTTP response reports as elapsed_ns / queue_ns.
type End struct {
	Rows      uint64
	ElapsedNs int64
	QueueNs   int64
}

// AppendEnd encodes e.
func AppendEnd(b []byte, e *End) []byte {
	b = appendU64(b, e.Rows)
	b = appendI64(b, e.ElapsedNs)
	return appendI64(b, e.QueueNs)
}

// DecodeEnd decodes a FrameEnd payload.
func DecodeEnd(p []byte) (*End, error) {
	c := cursor{p: p}
	e := &End{Rows: c.u64(), ElapsedNs: c.i64(), QueueNs: c.i64()}
	if err := c.done(); err != nil {
		return nil, err
	}
	return e, nil
}

// EstimateW is one aggregate estimate on the wire, mirroring the HTTP
// response's estimate object field for field.
type EstimateW struct {
	Name       string
	Value      float64
	HalfWidth  float64
	Confidence float64
	RelError   float64
	Exact      bool
	SampleRows uint32
}

// TrailW is one escalation-ladder rung on the wire.
type TrailW struct {
	Layer     string
	Rows      uint32
	ElapsedNs int64
	Satisfied bool
}

// Bounded is a bounded estimate answer: one typed frame carrying the
// estimates plus the trail and interval metadata, never a row stream.
type Bounded struct {
	Layer      string
	Exact      bool
	BoundMet   bool
	PromisedNs int64
	Estimates  []EstimateW
	Trail      []TrailW
}

// maxBoundedItems caps estimate/trail counts in a decoded bounded
// frame; real answers carry a handful of each.
const maxBoundedItems = 65535

// AppendBounded encodes a.
func AppendBounded(b []byte, a *Bounded) []byte {
	b = appendStr(b, a.Layer)
	b = appendBool(b, a.Exact)
	b = appendBool(b, a.BoundMet)
	b = appendI64(b, a.PromisedNs)
	b = appendU16(b, uint16(len(a.Estimates)))
	for _, e := range a.Estimates {
		b = appendStr(b, e.Name)
		b = appendF64(b, e.Value)
		b = appendF64(b, e.HalfWidth)
		b = appendF64(b, e.Confidence)
		b = appendF64(b, e.RelError)
		b = appendBool(b, e.Exact)
		b = appendU32(b, e.SampleRows)
	}
	b = appendU16(b, uint16(len(a.Trail)))
	for _, t := range a.Trail {
		b = appendStr(b, t.Layer)
		b = appendU32(b, t.Rows)
		b = appendI64(b, t.ElapsedNs)
		b = appendBool(b, t.Satisfied)
	}
	return b
}

// DecodeBounded decodes a FrameBounded payload.
func DecodeBounded(p []byte) (*Bounded, error) {
	c := cursor{p: p}
	a := &Bounded{
		Layer:      c.str(),
		Exact:      c.boolv(),
		BoundMet:   c.boolv(),
		PromisedNs: c.i64(),
	}
	ne := int(c.u16())
	if c.bad || ne > maxBoundedItems || ne > c.remaining() {
		return nil, fmt.Errorf("wire: bounded frame declares %d estimates", ne)
	}
	a.Estimates = make([]EstimateW, ne)
	for i := range a.Estimates {
		a.Estimates[i] = EstimateW{
			Name:       c.str(),
			Value:      c.f64(),
			HalfWidth:  c.f64(),
			Confidence: c.f64(),
			RelError:   c.f64(),
			Exact:      c.boolv(),
			SampleRows: c.u32(),
		}
	}
	nt := int(c.u16())
	if c.bad || nt > maxBoundedItems || nt > c.remaining() {
		return nil, fmt.Errorf("wire: bounded frame declares %d trail steps", nt)
	}
	a.Trail = make([]TrailW, nt)
	for i := range a.Trail {
		a.Trail[i] = TrailW{
			Layer:     c.str(),
			Rows:      c.u32(),
			ElapsedNs: c.i64(),
			Satisfied: c.boolv(),
		}
	}
	if err := c.done(); err != nil {
		return nil, err
	}
	return a, nil
}

// ErrorFrame is a server failure report. Codes mirror the HTTP error
// codes (parse_error, overloaded, draining, timeout, canceled,
// exec_error, query_panic, internal_panic, memory_pressure,
// bad_request, protocol_error); RetryAfterNs > 0 is the binary
// equivalent of the Retry-After header on 429/503 responses.
type ErrorFrame struct {
	Code         string
	Message      string
	RetryAfterNs int64
}

// AppendError encodes e.
func AppendError(b []byte, e *ErrorFrame) []byte {
	b = appendStr(b, e.Code)
	b = appendStr(b, e.Message)
	return appendI64(b, e.RetryAfterNs)
}

// DecodeError decodes a FrameError payload.
func DecodeError(p []byte) (*ErrorFrame, error) {
	c := cursor{p: p}
	e := &ErrorFrame{Code: c.str(), Message: c.str(), RetryAfterNs: c.i64()}
	if err := c.done(); err != nil {
		return nil, err
	}
	return e, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
