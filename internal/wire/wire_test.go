package wire

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sciborq"
	"sciborq/internal/column"
	"sciborq/internal/engine"
	"sciborq/internal/server"
	"sciborq/internal/skyserver"
	"sciborq/internal/table"
)

const (
	testTable = "PhotoObjAll"
	batchRows = 8000
)

// newTestDB builds the same SkyServer fixture the HTTP server tests
// use: synthetic catalogue, tracked workload, two-layer impressions.
func newTestDB(t testing.TB, nights int, opts ...sciborq.Option) *sciborq.DB {
	t.Helper()
	base := []sciborq.Option{
		sciborq.WithCostModel(engine.CostModel{NsPerRow: 12, FixedNs: 2000}),
		sciborq.WithSeed(99),
	}
	db := sciborq.Open(append(base, opts...)...)
	cfg := skyserver.DefaultConfig(0)
	sky, err := skyserver.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fact, err := sky.Catalog.Get(testTable)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AttachTable(fact); err != nil {
		t.Fatal(err)
	}
	if err := db.TrackWorkload(testTable,
		sciborq.Attr{Name: "ra", Min: cfg.RaMin, Max: cfg.RaMax, Beta: 30},
		sciborq.Attr{Name: "dec", Min: cfg.DecMin, Max: cfg.DecMax, Beta: 30},
	); err != nil {
		t.Fatal(err)
	}
	if err := db.BuildImpressions(testTable, sciborq.ImpressionConfig{
		Sizes:  []int{4000, 400},
		Policy: sciborq.Biased,
		Attrs:  []string{"ra", "dec"},
	}); err != nil {
		t.Fatal(err)
	}
	gen := sky.Generator(nil)
	for night := 0; night < nights; night++ {
		if err := db.Load(testTable, gen.NextBatch(batchRows)); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// startWire boots a server.Server core plus a wire listener over db and
// returns the core, the wire server, and its dial address.
func startWire(t testing.TB, db *sciborq.DB, coreCfg server.Config, wireCfg Config) (*server.Server, *Server, string) {
	t.Helper()
	coreCfg.DB = db
	core, err := server.New(coreCfg)
	if err != nil {
		t.Fatal(err)
	}
	wireCfg.DB = db
	wireCfg.Core = core
	ws := NewServer(wireCfg)
	core.SetWireStats(func() any { return ws.Stats() })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ws.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		ws.Shutdown(ctx)
	})
	return core, ws, ln.Addr().String()
}

func dialT(t testing.TB, addr, tenant string) *Client {
	t.Helper()
	c, err := Dial(addr, tenant)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestWireQueryExact(t *testing.T) {
	db := newTestDB(t, 2)
	_, ws, addr := startWire(t, db, server.Config{MaxInFlight: 4}, Config{})
	c := dialT(t, addr, "")

	resp, err := c.Query("SELECT COUNT(*) AS n FROM PhotoObjAll")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Exact == nil || resp.Exact.NumRows() != 1 {
		t.Fatalf("count query: %+v", resp)
	}
	if got := resp.Exact.RowStrings(0)[0]; got != "16000" {
		t.Fatalf("COUNT(*) = %s, want 16000", got)
	}
	if resp.ElapsedNs <= 0 {
		t.Fatal("End frame carries no elapsed time")
	}

	// Projection: bit-identical to the engine's own result.
	const sql = "SELECT ra, dec FROM PhotoObjAll WHERE ra > 165"
	resp, err = c.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.Exec(sql)
	if err != nil {
		t.Fatal(err)
	}
	n := want.Rows.Len()
	if resp.Exact.NumRows() != n || int(resp.Rows) != n {
		t.Fatalf("wire streamed %d rows, engine returned %d", resp.Exact.NumRows(), n)
	}
	ra, _ := want.Rows.Table.Col("ra")
	dec, _ := want.Rows.Table.Col("dec")
	raData := ra.(*column.Float64Col).Data
	decData := dec.(*column.Float64Col).Data
	for i := 0; i < n; i++ {
		if math.Float64bits(resp.Exact.Blocks[0].F64[i]) != math.Float64bits(raData[i]) ||
			math.Float64bits(resp.Exact.Blocks[1].F64[i]) != math.Float64bits(decData[i]) {
			t.Fatalf("row %d differs from the engine result", i)
		}
	}

	st := ws.Stats()
	if st.Queries < 2 || st.Batches == 0 || st.RowsOut == 0 || st.BytesOut == 0 {
		t.Fatalf("stats not accounting: %+v", st)
	}
}

func TestWireBounded(t *testing.T) {
	db := newTestDB(t, 2)
	_, _, addr := startWire(t, db, server.Config{MaxInFlight: 4}, Config{})
	c := dialT(t, addr, "")

	resp, err := c.Query(
		"SELECT COUNT(*) AS n FROM PhotoObjAll WHERE fGetNearbyObjEq(165, 20, 3) WITHIN ERROR 0.2 CONFIDENCE 0.95")
	if err != nil {
		t.Fatal(err)
	}
	b := resp.Bounded
	if b == nil {
		t.Fatalf("bounded query returned no Bounded frame: %+v", resp)
	}
	if len(b.Estimates) != 1 || b.Estimates[0].Name != "n" {
		t.Fatalf("estimates malformed: %+v", b)
	}
	if len(b.Trail) == 0 {
		t.Fatal("bounded answer must carry its escalation trail")
	}
	if !b.Exact && b.Estimates[0].Confidence <= 0 {
		t.Fatalf("approximate estimate without a confidence level: %+v", b.Estimates[0])
	}
}

func TestWireErrorsKeepSessionAlive(t *testing.T) {
	db := newTestDB(t, 1)
	_, _, addr := startWire(t, db, server.Config{MaxInFlight: 4}, Config{})
	c := dialT(t, addr, "")

	cases := []struct {
		sql, code string
	}{
		{"SELEKT nonsense", "parse_error"},
		{"", "bad_request"},
		{"SELECT COUNT(*) AS n FROM NoSuchTable", "exec_error"},
	}
	for _, tc := range cases {
		_, err := c.Query(tc.sql)
		var se *ServerError
		if !errors.As(err, &se) || se.Code != tc.code {
			t.Fatalf("query %q: got %v, want code %s", tc.sql, err, tc.code)
		}
	}
	// The session survives every in-band error.
	resp, err := c.Query("SELECT COUNT(*) AS n FROM PhotoObjAll")
	if err != nil || resp.Exact.RowStrings(0)[0] != "8000" {
		t.Fatalf("session dead after error frames: %v %+v", err, resp)
	}
}

func TestWirePrepared(t *testing.T) {
	db := newTestDB(t, 2)
	_, ws, addr := startWire(t, db, server.Config{MaxInFlight: 4}, Config{})
	c := dialT(t, addr, "")

	st, err := c.Prepare("SELECT COUNT(*) AS n FROM PhotoObjAll WHERE ra > 160")
	if err != nil {
		t.Fatal(err)
	}
	if st.NumParams != 1 {
		t.Fatalf("NumParams = %d, want 1", st.NumParams)
	}

	// First execution admits the plan; every warm re-execution must be
	// an alias-tier hit — the zero-parse-allocation path (the alias
	// probe itself is asserted 0 allocs/op by the plan cache's own
	// TestLookupZeroAlloc / TestFrontEndZeroAlloc gates).
	first, err := c.Execute(st)
	if err != nil {
		t.Fatal(err)
	}
	want := first.Exact.RowStrings(0)[0]
	warm0 := db.PlanCacheStats()
	const reexecs = 20
	for i := 0; i < reexecs; i++ {
		resp, err := c.Execute(st)
		if err != nil {
			t.Fatal(err)
		}
		if got := resp.Exact.RowStrings(0)[0]; got != want {
			t.Fatalf("re-execution %d: %s, want %s", i, got, want)
		}
	}
	warm1 := db.PlanCacheStats()
	if hits := warm1.Hits - warm0.Hits; hits != reexecs {
		t.Fatalf("warm re-executions produced %d alias hits, want %d", hits, reexecs)
	}
	if warm1.Misses != warm0.Misses {
		t.Fatalf("warm re-executions caused %d full parses, want 0", warm1.Misses-warm0.Misses)
	}

	// Literal rebinding: same statement, new threshold, answers
	// bit-identical to a direct query with the substituted literal.
	bound, err := c.Execute(st, 170)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := db.Exec("SELECT COUNT(*) AS n FROM PhotoObjAll WHERE ra > 170")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := bound.Exact.RowStrings(0)[0], direct.Rows.Table.RowStrings(0)[0]; got != want {
		t.Fatalf("rebound execution: %s, want %s", got, want)
	}

	// The rebind must NOT poison the statement's cached spelling: a
	// verbatim re-execution still answers for the original literal.
	again, err := c.Execute(st)
	if err != nil {
		t.Fatal(err)
	}
	if got := again.Exact.RowStrings(0)[0]; got != want170Guard(want, bound.Exact.RowStrings(0)[0]) {
		t.Fatalf("verbatim after rebind: %s, want the ra>160 answer %s", got, want)
	}

	// Parameter arity is enforced.
	if _, err := c.Execute(st, 1, 2); !isCode(err, "bad_request") {
		t.Fatalf("arity mismatch: %v", err)
	}

	// Closed statements stop resolving.
	if err := c.CloseStmt(st); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Execute(st); !isCode(err, "bad_request") {
		t.Fatalf("execute after close: %v", err)
	}
	if open := ws.Stats().StmtsOpen; open != 0 {
		t.Fatalf("stmts_open = %d after close, want 0", open)
	}
}

// want170Guard returns the ra>160 answer while asserting the test is
// meaningful: if both literals produced the same count the poisoning
// check could not distinguish them.
func want170Guard(want160, got170 string) string {
	if want160 == got170 {
		panic("fixture degenerate: ra>160 and ra>170 have equal counts")
	}
	return want160
}

func isCode(err error, code string) bool {
	var se *ServerError
	return errors.As(err, &se) && se.Code == code
}

func TestWireOverloadAndStats(t *testing.T) {
	db := newTestDB(t, 1)
	core, _, addr := startWire(t, db, server.Config{MaxInFlight: -1}, Config{})
	c := dialT(t, addr, "")

	_, err := c.Query("SELECT COUNT(*) AS n FROM PhotoObjAll")
	var se *ServerError
	if !errors.As(err, &se) || se.Code != "overloaded" {
		t.Fatalf("got %v, want overloaded error frame", err)
	}
	if se.RetryAfter < 0 {
		t.Fatalf("negative retry-after: %v", se.RetryAfter)
	}
	adm := core.Admission().Stats()
	if adm.InFlight != 0 || adm.Queued != 0 {
		t.Fatalf("admission occupancy leaked: %+v", adm)
	}

	// The wire section shows up in the HTTP /stats body.
	ts := httptest.NewServer(core.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Wire *StatsSnapshot `json:"wire"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Wire == nil || stats.Wire.Queries == 0 || stats.Wire.ErrorsSent == 0 {
		t.Fatalf("/stats wire section missing or empty: %+v", stats.Wire)
	}
}

func TestWireProtocolViolations(t *testing.T) {
	db := newTestDB(t, 1)
	_, _, addr := startWire(t, db, server.Config{MaxInFlight: 2}, Config{})

	// A first frame that is not Hello gets a protocol_error frame and a
	// closed connection.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	raw := appendU32(nil, 2)
	raw = appendU8(raw, FrameQuery)
	raw = appendU8(raw, 'x')
	if _, err := conn.Write(raw); err != nil {
		t.Fatal(err)
	}
	typ, payload, _, err := ReadFrame(conn, MaxServerFrame, nil)
	if err != nil || typ != FrameError {
		t.Fatalf("want error frame, got 0x%02x err %v", typ, err)
	}
	ef, err := DecodeError(payload)
	if err != nil || ef.Code != "protocol_error" {
		t.Fatalf("want protocol_error, got %+v %v", ef, err)
	}
	if _, _, _, err := ReadFrame(conn, MaxServerFrame, nil); err == nil {
		t.Fatal("connection still open after protocol violation")
	}

	// A frame above the client cap is rejected without reading it.
	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], MaxClientFrame+100)
	hdr[4] = FrameHello
	if _, err := conn2.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	if typ, _, _, err := ReadFrame(conn2, MaxServerFrame, nil); err != nil || typ != FrameError {
		t.Fatalf("oversized frame: want error frame, got 0x%02x err %v", typ, err)
	}
}

// TestWireVsHTTPEquivalence runs the same statements over both
// transports at parallelism 1 and 4 and demands bit-identical values —
// the wire result in full, the JSON result as its (possibly truncated)
// prefix — then repeats the comparison under and after a concurrent
// ingest.
func TestWireVsHTTPEquivalence(t *testing.T) {
	for _, par := range []int{1, 4} {
		par := par
		t.Run(fmt.Sprintf("parallelism%d", par), func(t *testing.T) {
			db := newTestDB(t, 2, sciborq.WithExecOptions(engine.ExecOptions{Parallelism: par}))
			core, _, addr := startWire(t, db, server.Config{MaxInFlight: 4}, Config{BatchRows: 3000})
			ts := httptest.NewServer(core.Handler())
			defer ts.Close()
			c := dialT(t, addr, "")

			queries := []string{
				"SELECT COUNT(*) AS n FROM PhotoObjAll",
				"SELECT AVG(dec) AS a FROM PhotoObjAll WHERE ra < 180",
				"SELECT ra, dec FROM PhotoObjAll WHERE ra > 165",
				"SELECT objID, type, clean FROM PhotoObjAll WHERE dec > 10",
			}
			for _, sql := range queries {
				compareTransports(t, c, ts.URL, sql)
			}

			// Under concurrent ingest both transports must keep
			// answering; exact cross-transport comparison resumes once
			// the table stops moving.
			sky, err := skyserver.New(skyserver.DefaultConfig(0))
			if err != nil {
				t.Fatal(err)
			}
			gen := sky.Generator(nil)
			var wg sync.WaitGroup
			wg.Add(1)
			loadErr := make(chan error, 1)
			go func() {
				defer wg.Done()
				for b := 0; b < 10; b++ {
					batch := gen.NextBatch(500)
					if err := db.Load(testTable, batch); err != nil {
						loadErr <- err
						return
					}
				}
			}()
			for i := 0; i < 10; i++ {
				sql := queries[i%len(queries)]
				if _, err := c.Query(sql); err != nil {
					t.Fatalf("wire query under load: %v", err)
				}
				if code, _ := httpQuery(t, ts.URL, sql); code != http.StatusOK {
					t.Fatalf("http query under load: status %d", code)
				}
			}
			wg.Wait()
			select {
			case err := <-loadErr:
				t.Fatal(err)
			default:
			}
			for _, sql := range queries {
				compareTransports(t, c, ts.URL, sql)
			}
		})
	}
}

// httpExact mirrors the server's exact-result JSON shape.
type httpExact struct {
	Columns   []string   `json:"columns"`
	Rows      [][]string `json:"rows"`
	RowCount  int        `json:"row_count"`
	Truncated bool       `json:"truncated"`
}

func httpQuery(t *testing.T, base, sql string) (int, *httpExact) {
	t.Helper()
	body, _ := json.Marshal(map[string]string{"sql": sql})
	resp, err := http.Post(base+"/query", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Exact *httpExact `json:"exact"`
	}
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, out.Exact
}

func compareTransports(t *testing.T, c *Client, httpBase, sql string) {
	t.Helper()
	wr, err := c.Query(sql)
	if err != nil {
		t.Fatalf("wire %q: %v", sql, err)
	}
	code, ex := httpQuery(t, httpBase, sql)
	if code != http.StatusOK || ex == nil {
		t.Fatalf("http %q: status %d", sql, code)
	}
	if wr.Exact == nil {
		t.Fatalf("wire %q: no exact result", sql)
	}
	if wr.Exact.NumRows() != ex.RowCount {
		t.Fatalf("%q: wire %d rows, http row_count %d", sql, wr.Exact.NumRows(), ex.RowCount)
	}
	if ex.Truncated && len(ex.Rows) >= ex.RowCount {
		t.Fatalf("%q: http claims truncation but shipped all rows", sql)
	}
	for i, name := range ex.Columns {
		if wr.Exact.Cols[i].Name != name {
			t.Fatalf("%q: column %d is %q on the wire, %q over http", sql, i, wr.Exact.Cols[i].Name, name)
		}
	}
	// The JSON rows are a prefix of the full wire stream; every value
	// string must match exactly (same %g/%d/%t rendering).
	for i, row := range ex.Rows {
		got := wr.Exact.RowStrings(i)
		for j := range row {
			if got[j] != row[j] {
				t.Fatalf("%q row %d col %d: wire %q != http %q", sql, i, j, got[j], row[j])
			}
		}
	}
}

// TestWireStreamMillionRows is the tentpole acceptance test: a 1M-row
// exact projection streams completely (no 10k truncation), across all
// four column types, bit-identical to the engine's materialised result.
func TestWireStreamMillionRows(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-row stream in -short mode")
	}
	const rows = 1_000_000
	x := column.NewFloat64("x")
	id := column.NewInt64("id")
	tag := column.NewString("tag")
	flag := column.NewBool("flag")
	words := []string{"STAR", "GALAXY", "QSO", "SKY", "DEBRIS", "GHOST", "TRAIL", "BLEND"}
	for i := 0; i < rows; i++ {
		x.Append(float64(i) * 0.4269)
		id.Append(int64(i) * 3)
		tag.Append(words[i%len(words)])
		flag.Append(i%5 == 0)
	}
	big, err := table.New("Big", table.Schema{
		{Name: "x", Type: column.Float64},
		{Name: "id", Type: column.Int64},
		{Name: "tag", Type: column.String},
		{Name: "flag", Type: column.Bool},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := big.AppendColumns([]column.Column{x, id, tag, flag}); err != nil {
		t.Fatal(err)
	}
	db := sciborq.Open()
	if err := db.AttachTable(big); err != nil {
		t.Fatal(err)
	}
	_, ws, addr := startWire(t, db, server.Config{MaxInFlight: 2}, Config{})
	c := dialT(t, addr, "")

	const sql = "SELECT x, id, tag, flag FROM Big"
	resp, err := c.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Exact == nil || resp.Exact.NumRows() != rows || resp.Rows != rows {
		t.Fatalf("streamed %d rows, want %d", resp.Exact.NumRows(), rows)
	}
	want, err := db.Exec(sql)
	if err != nil {
		t.Fatal(err)
	}
	if want.Rows.Len() != rows {
		t.Fatalf("engine result has %d rows", want.Rows.Len())
	}
	wx, _ := want.Rows.Table.Col("x")
	wid, _ := want.Rows.Table.Col("id")
	wtag, _ := want.Rows.Table.Col("tag")
	wflag, _ := want.Rows.Table.Col("flag")
	xs := wx.(*column.Float64Col).Data
	ids := wid.(*column.Int64Col).Data
	tags := wtag.(*column.StringCol)
	flags := wflag.(*column.BoolCol).Data
	got := resp.Exact.Blocks
	for i := 0; i < rows; i++ {
		if math.Float64bits(got[0].F64[i]) != math.Float64bits(xs[i]) ||
			got[1].I64[i] != ids[i] ||
			got[2].Str[i] != tags.Word(tags.Data[i]) ||
			got[3].Bool[i] != flags[i] {
			t.Fatalf("row %d differs from the engine result", i)
		}
	}
	if st := ws.Stats(); st.Batches < int64(rows/defaultBatchRows) {
		t.Fatalf("only %d batches for %d rows — streaming did not chunk", st.Batches, rows)
	}
}
