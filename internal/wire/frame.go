// Package wire implements the SciBORQ binary wire protocol: a
// length-prefixed frame stream over TCP with columnar result encoding
// and connection-oriented sessions.
//
// The protocol exists because the HTTP/JSON front end string-encodes
// every value and truncates exact results; serving "heavy traffic"
// needs results moving at hardware speed. A wire result ships typed
// column blocks — raw little-endian int64/float64 pages, bitmaps for
// booleans, dictionary pages for VARCHAR — in morsel-aligned batches,
// streamed with no row cap and natural TCP backpressure: a slow client
// blocks the flush, which holds the query's admission slot, which is
// load the WITHIN TIME pricing already sees.
//
// Every frame is
//
//	uint32 length (little-endian) | uint8 type | payload
//
// where length counts the type byte plus the payload. The full grammar,
// type codes, session lifecycle, and error semantics are documented in
// docs/PROTOCOL.md.
package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// ProtocolVersion is negotiated in the Hello handshake; the server
// rejects clients speaking a newer major version.
const ProtocolVersion = 1

// Frame types. Client-to-server frames sit below 0x80, server-to-client
// frames at or above it; FrameError is deliberately distant from the
// data frames so a corrupted type byte is unlikely to alias it.
const (
	// FrameHello opens a session: u8 version, str tenant.
	FrameHello = 0x01
	// FrameQuery executes one SQL statement: str sql.
	FrameQuery = 0x02
	// FramePrepare registers a prepared statement: str sql.
	FramePrepare = 0x03
	// FrameExecute runs a prepared statement: u32 stmt id, u16 nlits,
	// nlits × f64 literal values (empty = re-execute verbatim).
	FrameExecute = 0x04
	// FrameCloseStmt discards a prepared statement: u32 stmt id.
	FrameCloseStmt = 0x05
	// FrameBye ends the session cleanly (empty payload).
	FrameBye = 0x06

	// FrameHelloOK acknowledges Hello: u8 version, u64 session id.
	FrameHelloOK = 0x81
	// FramePrepareOK acknowledges Prepare: u32 stmt id, u16 nparams.
	FramePrepareOK = 0x82
	// FrameHeader opens an exact result stream: u64 total rows, u16
	// ncols, ncols × (str name, u8 type code).
	FrameHeader = 0x83
	// FrameBatch carries one columnar batch; see AppendBatch.
	FrameBatch = 0x84
	// FrameEnd closes a result: u64 rows, i64 elapsed ns, i64 queue ns.
	FrameEnd = 0x85
	// FrameBounded carries a bounded estimate answer; see AppendBounded.
	FrameBounded = 0x86
	// FrameError reports a failure: str code, str message, i64
	// retry-after ns (0 = no retry hint).
	FrameError = 0xEF
)

// Wire column type codes. They mirror column.Type's values on purpose —
// the encoder casts directly — but are frozen here independently: the
// protocol may not change when the storage enum does.
const (
	TypeFloat64 = 0
	TypeInt64   = 1
	TypeString  = 2
	TypeBool    = 3
)

// Frame size caps. Client frames carry SQL text and literal bindings,
// so the HTTP body cap carries over; server frames carry column pages
// for up to one morsel of rows, so the cap is sized for a wide morsel
// (64K rows × many columns) with headroom.
const (
	MaxClientFrame = 1 << 20
	MaxServerFrame = 64 << 20
)

// ErrFrameTooLarge is returned by ReadFrame when the peer announces a
// frame beyond the caller's cap — a protocol violation, not an I/O
// error; the connection is unrecoverable after it.
type ErrFrameTooLarge struct {
	Size, Max uint32
}

func (e *ErrFrameTooLarge) Error() string {
	return fmt.Sprintf("wire: frame of %d bytes exceeds the %d-byte cap", e.Size, e.Max)
}

// ReadFrame reads one frame, reusing scratch for the payload when it
// fits. It returns the frame type, the payload (valid until the next
// call with the same scratch), and the possibly grown scratch slice.
func ReadFrame(r io.Reader, max uint32, scratch []byte) (typ byte, payload []byte, newScratch []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, scratch, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n < 1 {
		return 0, nil, scratch, fmt.Errorf("wire: zero-length frame")
	}
	if n > max {
		return 0, nil, scratch, &ErrFrameTooLarge{Size: n, Max: max}
	}
	typ = hdr[4]
	body := int(n - 1)
	if cap(scratch) < body {
		scratch = make([]byte, body)
	}
	payload = scratch[:body]
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF // the frame header promised more
		}
		return 0, nil, scratch, err
	}
	return typ, payload, scratch, nil
}

// WriteFrame writes one frame to w. The caller flushes.
func WriteFrame(w *bufio.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload))+1)
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// Payload append helpers. All integers are little-endian; strings are
// uvarint length + bytes.

func appendU8(b []byte, v byte) []byte { return append(b, v) }
func appendU16(b []byte, v uint16) []byte {
	return append(b, byte(v), byte(v>>8))
}
func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}
func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}
func appendI64(b []byte, v int64) []byte { return appendU64(b, uint64(v)) }
func appendF64(b []byte, v float64) []byte {
	return appendU64(b, math.Float64bits(v))
}
func appendStr(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}
func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// cursor is a bounds-checked payload reader: a read past the end flips
// bad and returns zero values, so decoders can run straight-line and
// check once. Every count-driven allocation must be guarded against
// remaining() first — that is what keeps arbitrary fuzz input from
// turning a forged 4-byte count into a gigabyte make().
type cursor struct {
	p   []byte
	off int
	bad bool
}

func (c *cursor) remaining() int { return len(c.p) - c.off }

func (c *cursor) fail() {
	c.bad = true
	c.off = len(c.p)
}

func (c *cursor) bytes(n int) []byte {
	if n < 0 || c.remaining() < n {
		c.fail()
		return nil
	}
	b := c.p[c.off : c.off+n]
	c.off += n
	return b
}

func (c *cursor) u8() byte {
	b := c.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (c *cursor) u16() uint16 {
	b := c.bytes(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (c *cursor) u32() uint32 {
	b := c.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (c *cursor) u64() uint64 {
	b := c.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (c *cursor) i64() int64   { return int64(c.u64()) }
func (c *cursor) f64() float64 { return math.Float64frombits(c.u64()) }

func (c *cursor) uvarint() uint64 {
	v, n := binary.Uvarint(c.p[c.off:])
	if n <= 0 {
		c.fail()
		return 0
	}
	c.off += n
	return v
}

func (c *cursor) str() string {
	n := c.uvarint()
	if c.bad || n > uint64(c.remaining()) {
		c.fail()
		return ""
	}
	return string(c.bytes(int(n)))
}

func (c *cursor) boolv() bool { return c.u8() != 0 }

// done returns an error if the cursor overran or left trailing bytes —
// a decoded payload must account for every byte it was handed.
func (c *cursor) done() error {
	if c.bad {
		return fmt.Errorf("wire: truncated payload")
	}
	if c.remaining() != 0 {
		return fmt.Errorf("wire: %d trailing bytes after payload", c.remaining())
	}
	return nil
}
