package wire

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"sciborq"
	"sciborq/internal/engine"
	"sciborq/internal/faultinject"
	"sciborq/internal/server"
	"sciborq/internal/skyserver"
)

// Chaos parameters mirror the HTTP chaos suite exactly: same seed, same
// schedule, same load shape — the wire listener must uphold the same
// resilience invariants over persistent binary sessions.
const (
	chaosSeed    = 2011
	chaosClients = 8
	chaosQueries = 40
)

// chaosFixture builds the primary DB (all caches on, tiny morsels so the
// morsel fault point fires thousands of times) and an uncached mirror
// over the SAME table object — the bit-identical recovery reference.
func chaosFixture(t *testing.T) (*sciborq.DB, *sciborq.DB, *skyserver.Generator) {
	t.Helper()
	cfg := skyserver.DefaultConfig(0)
	sky, err := skyserver.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fact, err := sky.Catalog.Get(testTable)
	if err != nil {
		t.Fatal(err)
	}
	execOpts := engine.ExecOptions{Parallelism: 4, MorselRows: 256}
	db := sciborq.Open(
		sciborq.WithCostModel(engine.CostModel{NsPerRow: 12, FixedNs: 2000}),
		sciborq.WithSeed(99),
		sciborq.WithExecOptions(execOpts),
	)
	if err := db.AttachTable(fact); err != nil {
		t.Fatal(err)
	}
	if err := db.TrackWorkload(testTable,
		sciborq.Attr{Name: "ra", Min: cfg.RaMin, Max: cfg.RaMax, Beta: 30},
		sciborq.Attr{Name: "dec", Min: cfg.DecMin, Max: cfg.DecMax, Beta: 30},
	); err != nil {
		t.Fatal(err)
	}
	if err := db.BuildImpressions(testTable, sciborq.ImpressionConfig{
		Sizes:  []int{4000, 400},
		Policy: sciborq.Biased,
		Attrs:  []string{"ra", "dec"},
	}); err != nil {
		t.Fatal(err)
	}
	gen := sky.Generator(nil)
	for night := 0; night < 2; night++ {
		if err := db.Load(testTable, gen.NextBatch(batchRows)); err != nil {
			t.Fatal(err)
		}
	}
	mirror := sciborq.Open(
		sciborq.WithCostModel(engine.CostModel{NsPerRow: 12, FixedNs: 2000}),
		sciborq.WithSeed(99),
		sciborq.WithExecOptions(execOpts),
		sciborq.WithRecyclerBudget(-1),
		sciborq.WithPlanCacheBudget(-1),
	)
	if err := mirror.AttachTable(fact); err != nil {
		t.Fatal(err)
	}
	return db, mirror, gen
}

// chaosSQL is client c's i-th statement — same mix as the HTTP suite:
// exact WHERE aggregates with per-(client,query) literals plus a bounded
// query every fifth round. Deterministic, so a failure replays.
func chaosSQL(c, i int) string {
	switch i % 5 {
	case 4:
		return fmt.Sprintf(
			"SELECT COUNT(*) AS n FROM PhotoObjAll WHERE fGetNearbyObjEq(%d, %d, 3) WITHIN ERROR 0.3 CONFIDENCE 0.9",
			150+(c*7+i)%40, 10+(c+i)%20)
	case 3:
		return fmt.Sprintf("SELECT AVG(dec) AS a FROM PhotoObjAll WHERE ra < %d", 155+(c*11+i)%35)
	default:
		return fmt.Sprintf("SELECT COUNT(*) AS n FROM PhotoObjAll WHERE ra > %d", 150+(c*13+i)%40)
	}
}

// TestChaosWire replays the seeded fault schedule of the HTTP chaos
// suite against the wire listener: 8 persistent binary sessions × 40
// queries under concurrent ingest, with errors, panics, and latency
// firing at all six fault points. Invariants: no session ever sees a
// transport-level failure (every fault surfaces as a typed error frame
// on a still-usable session), every admission slot comes back, recovered
// panics never exceed injected ones, and once the faults are disarmed
// the battered primary answers bit-identically to the uncached mirror.
func TestChaosWire(t *testing.T) {
	db, mirror, gen := chaosFixture(t)
	core, _, addr := startWire(t, db, server.Config{MaxInFlight: 4, MaxQueue: 8}, Config{})
	ts := httptest.NewServer(core.Handler())
	defer ts.Close()

	plan := faultinject.Schedule(chaosSeed, []faultinject.PointSpec{
		{Point: faultinject.PointMorsel, Faults: 30, MaxHit: 1000,
			Kinds: []faultinject.Kind{faultinject.KindError, faultinject.KindPanic}},
		{Point: faultinject.PointRecycler, Faults: 20, MaxHit: 150,
			Kinds: []faultinject.Kind{faultinject.KindError, faultinject.KindPanic}},
		{Point: faultinject.PointPlanCache, Faults: 25, MaxHit: 400,
			Kinds: []faultinject.Kind{faultinject.KindError, faultinject.KindPanic}},
		{Point: faultinject.PointAdmission, Faults: 25, MaxHit: 250,
			Kinds: []faultinject.Kind{faultinject.KindError, faultinject.KindPanic, faultinject.KindLatency}},
		{Point: faultinject.PointQuery, Faults: 25, MaxHit: 250,
			Kinds: []faultinject.Kind{faultinject.KindError, faultinject.KindPanic, faultinject.KindLatency}},
		{Point: faultinject.PointLoad, Faults: 10, MaxHit: 15,
			Kinds: []faultinject.Kind{faultinject.KindError}},
	})
	faultinject.Enable(plan)
	defer faultinject.Disable()

	var loadErrs []error
	loadDone := make(chan struct{})
	go func() {
		defer close(loadDone)
		for b := 0; b < 15; b++ {
			if err := db.Load(testTable, gen.NextBatch(500)); err != nil {
				loadErrs = append(loadErrs, err)
			}
		}
	}()

	var (
		mu         sync.Mutex
		ok         int
		byCode     = map[string]int{}
		clientErrs []error
	)
	var wg sync.WaitGroup
	for c := 0; c < chaosClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// One persistent session per client: every injected fault must
			// surface as an in-band error frame, never a dropped connection.
			cl, err := Dial(addr, "")
			if err != nil {
				mu.Lock()
				clientErrs = append(clientErrs, fmt.Errorf("client %d dial: %w", c, err))
				mu.Unlock()
				return
			}
			defer cl.Close()
			for i := 0; i < chaosQueries; i++ {
				_, err := cl.Query(chaosSQL(c, i))
				mu.Lock()
				if err == nil {
					ok++
				} else {
					var se *ServerError
					if errors.As(err, &se) {
						byCode[se.Code]++
					} else {
						clientErrs = append(clientErrs,
							fmt.Errorf("client %d query %d: transport failure %w", c, i, err))
					}
				}
				mu.Unlock()
				if err != nil {
					var se *ServerError
					if !errors.As(err, &se) {
						return // session gone — already recorded as a failure
					}
				}
			}
		}(c)
	}
	wg.Wait()
	<-loadDone

	fired := plan.FiredTotal()
	errsFired, panicsFired, latsFired := plan.Fired()
	faultinject.Disable()
	t.Logf("chaos seed %d: fired %d faults (%d errors, %d panics, %d latencies); ok %d codes %v",
		chaosSeed, fired, errsFired, panicsFired, latsFired, ok, byCode)

	for _, err := range clientErrs {
		t.Error(err)
	}
	for _, err := range loadErrs {
		if !errors.Is(err, faultinject.ErrInjected) {
			t.Errorf("load failed with a non-injected error: %v", err)
		}
	}

	if fired < 100 {
		t.Fatalf("only %d faults fired, want >= 100 (replay with seed %d)", fired, chaosSeed)
	}
	for _, pt := range []string{
		faultinject.PointMorsel, faultinject.PointRecycler, faultinject.PointPlanCache,
		faultinject.PointAdmission, faultinject.PointQuery, faultinject.PointLoad,
	} {
		if plan.Hits(pt) == 0 {
			t.Errorf("fault point %s was never reached", pt)
		}
	}

	// Only documented error codes, and plenty of successes. "canceled"
	// is legitimate: a fault in one parallel morsel worker cancels its
	// siblings, and the cancellation can win the error race.
	for code := range byCode {
		switch code {
		case "exec_error", "query_panic", "internal_panic", "injected_fault",
			"overloaded", "timeout", "canceled":
		default:
			t.Errorf("unexpected error code %q under chaos", code)
		}
	}
	if ok == 0 {
		t.Error("no query succeeded under chaos — the faults should be sparse, not total")
	}

	adm := core.Admission().Stats()
	if adm.InFlight != 0 || adm.Queued != 0 {
		t.Fatalf("admission not drained after chaos: %+v", adm)
	}
	if adm.Admitted == 0 {
		t.Fatal("admission admitted nothing under chaos")
	}

	// Panic accounting from /stats: recovered never exceeds injected.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Resilience struct {
			HandlerPanics int64  `json:"handler_panics"`
			QueryPanics   int64  `json:"query_panics"`
			LastPanic     string `json:"last_panic"`
		} `json:"resilience"`
		Wire *StatsSnapshot `json:"wire"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	recovered := st.Resilience.HandlerPanics + st.Resilience.QueryPanics
	if panicsFired > 0 && recovered == 0 {
		t.Errorf("%d panics fired but none recovered in /stats", panicsFired)
	}
	if recovered > int64(panicsFired) {
		t.Errorf("recovered %d panics, more than the %d injected — a real panic slipped in: %s",
			recovered, panicsFired, st.Resilience.LastPanic)
	}
	if st.Wire == nil || st.Wire.Queries == 0 {
		t.Errorf("/stats wire section missing after chaos: %+v", st.Wire)
	}

	// Bit-identical recovery: with faults disarmed, a fresh session on
	// the battered primary must answer exactly like a direct Exec on the
	// never-cached mirror over the same table.
	cl := dialT(t, addr, "")
	for i, sql := range []string{
		"SELECT COUNT(*) AS n FROM PhotoObjAll",
		"SELECT COUNT(*) AS n FROM PhotoObjAll WHERE ra > 165",
		"SELECT COUNT(*) AS n FROM PhotoObjAll WHERE ra BETWEEN 150 AND 170",
		"SELECT AVG(dec) AS a FROM PhotoObjAll WHERE ra < 180",
		"SELECT AVG(ra) AS a FROM PhotoObjAll WHERE dec > 0",
	} {
		got, err := cl.Query(sql)
		if err != nil || got.Exact == nil {
			t.Fatalf("post-chaos wire query %d (%s): %v", i, sql, err)
		}
		want, err := mirror.Exec(sql)
		if err != nil || want.Rows == nil {
			t.Fatalf("mirror query %d (%s): %v", i, sql, err)
		}
		n := want.Rows.Len()
		if got.Exact.NumRows() != n {
			t.Fatalf("post-chaos %q: %d rows on the wire, %d in the mirror",
				sql, got.Exact.NumRows(), n)
		}
		// RowStrings renders %g from the full float bits, so string
		// equality here is bit equality.
		for r := 0; r < n; r++ {
			gotRow := got.Exact.RowStrings(r)
			wantRow := want.Rows.Table.RowStrings(int32(r))
			for j := range wantRow {
				if gotRow[j] != wantRow[j] {
					t.Errorf("post-chaos divergence on %q row %d col %d: wire %q mirror %q",
						sql, r, j, gotRow[j], wantRow[j])
				}
			}
		}
	}
}
