package wire

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"sciborq"
	"sciborq/internal/column"
	"sciborq/internal/engine"
	"sciborq/internal/faultinject"
	"sciborq/internal/server"
	"sciborq/internal/sqlparse"
)

// Config configures a wire listener. DB and Core are required: the
// listener executes against DB and routes every shared serving concern
// (admission, memory gate, tenant accounting, panic counters) through
// Core so /stats and the resilience invariants span both transports.
type Config struct {
	DB   *sciborq.DB
	Core *server.Server

	// MaxQueryTime bounds each query's execution context; 0 means
	// unbounded. The server smoke config mirrors the HTTP setting.
	MaxQueryTime time.Duration

	// BatchRows is the row count per streamed batch frame. The default
	// (65536) matches the engine's morsel alignment: one batch encodes
	// whole cache-resident column pages.
	BatchRows int

	// WriteTimeout bounds each frame write/flush. A client that stops
	// reading stalls the stream — intended backpressure, since the
	// query's admission slot stays held — but a dead peer must not hold
	// a slot forever; the deadline converts it into a connection error.
	WriteTimeout time.Duration

	// IdleTimeout bounds how long a session may sit between requests
	// (and how long a request frame may take to arrive). Without it a
	// dead or silent client parks a goroutine and its session state
	// forever — the connection holds no admission slot, so nothing else
	// ever reaps it. A slow-but-active streaming client is unaffected:
	// the deadline arms only when the server turns around to read the
	// next request, after the previous response finished. 0 means the
	// default (5 minutes); negative disables (tests only).
	IdleTimeout time.Duration
}

const (
	defaultBatchRows    = 65536
	defaultWriteTimeout = 30 * time.Second
	defaultIdleTimeout  = 5 * time.Minute
	// maxStmts caps prepared statements per session; a session leaking
	// statements is cut off before its map becomes a memory sink.
	maxStmts = 1024
)

// Server is the binary-protocol listener.
type Server struct {
	cfg Config

	mu     sync.Mutex
	ln     net.Listener
	conns  map[*session]struct{}
	closed bool
	wg     sync.WaitGroup

	connsTotal atomic.Int64
	connsOpen  atomic.Int64
	queries    atomic.Int64
	prepares   atomic.Int64
	executes   atomic.Int64
	batches    atomic.Int64
	rowsOut    atomic.Int64
	bytesOut   atomic.Int64
	bytesIn    atomic.Int64
	errorsSent atomic.Int64
	panics     atomic.Int64
	stmtsOpen  atomic.Int64
	idleClosed atomic.Int64
	sessionSeq atomic.Uint64
}

// StatsSnapshot is the listener's counter snapshot; it renders under the
// "wire" key of the HTTP /stats response.
type StatsSnapshot struct {
	ConnsOpen  int64 `json:"conns_open"`
	ConnsTotal int64 `json:"conns_total"`
	Queries    int64 `json:"queries"`
	Prepares   int64 `json:"prepares"`
	Executes   int64 `json:"executes"`
	Batches    int64 `json:"batches"`
	RowsOut    int64 `json:"rows_out"`
	BytesOut   int64 `json:"bytes_out"`
	BytesIn    int64 `json:"bytes_in"`
	ErrorsSent int64 `json:"errors_sent"`
	Panics     int64 `json:"panics"`
	StmtsOpen  int64 `json:"stmts_open"`
	IdleClosed int64 `json:"idle_closed"`
}

// NewServer returns a wire listener serving cfg.DB. It panics if DB or
// Core is nil — both are wiring bugs, not runtime conditions.
func NewServer(cfg Config) *Server {
	if cfg.DB == nil || cfg.Core == nil {
		panic("wire: Config.DB and Config.Core are required")
	}
	if cfg.BatchRows <= 0 {
		cfg.BatchRows = defaultBatchRows
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = defaultWriteTimeout
	}
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = defaultIdleTimeout
	}
	return &Server{cfg: cfg, conns: make(map[*session]struct{})}
}

// Stats returns a snapshot of the listener's counters.
func (s *Server) Stats() StatsSnapshot {
	return StatsSnapshot{
		ConnsOpen:  s.connsOpen.Load(),
		ConnsTotal: s.connsTotal.Load(),
		Queries:    s.queries.Load(),
		Prepares:   s.prepares.Load(),
		Executes:   s.executes.Load(),
		Batches:    s.batches.Load(),
		RowsOut:    s.rowsOut.Load(),
		BytesOut:   s.bytesOut.Load(),
		BytesIn:    s.bytesIn.Load(),
		ErrorsSent: s.errorsSent.Load(),
		Panics:     s.panics.Load(),
		StmtsOpen:  s.stmtsOpen.Load(),
		IdleClosed: s.idleClosed.Load(),
	}
}

// Serve accepts connections on ln until Shutdown closes it. It always
// returns a non-nil error; after Shutdown the error is net.ErrClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			return err
		}
		sess := s.newSession(c)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return net.ErrClosed
		}
		s.conns[sess] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.connsTotal.Add(1)
		s.connsOpen.Add(1)
		go s.serveConn(sess)
	}
}

// Shutdown closes the listener, immediately closes idle connections,
// and waits for busy ones to finish their in-flight request — the wire
// half of the SIGTERM drain. The caller drains the shared admission
// queue first, so queued wire queries have already been answered with a
// draining error frame by the time their connections go idle here. When
// ctx expires, remaining connections are closed forcibly.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for {
		s.closeIdle()
		select {
		case <-done:
			return nil
		case <-ctx.Done():
			s.closeAll()
			<-done
			return ctx.Err()
		case <-tick.C:
		}
	}
}

func (s *Server) closeIdle() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for sess := range s.conns {
		if !sess.busy.Load() {
			sess.conn.Close()
		}
	}
}

func (s *Server) closeAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for sess := range s.conns {
		sess.conn.Close()
	}
}

// countingConn tallies raw bytes moved per direction into the server's
// counters; it sits between the bufio layers and the socket.
type countingConn struct {
	net.Conn
	s *Server
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.s.bytesIn.Add(int64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.s.bytesOut.Add(int64(n))
	return n, err
}

// prepared is one session-scoped prepared statement. Only the SQL text
// and its parameter count live here: verbatim re-execution rides the
// plan cache's alias tier (zero parse allocations once warm), and
// literal-bound execution re-parses through ParseBound, which replays
// the cached token walk rather than a cached AST.
type prepared struct {
	sql     string
	nparams int
}

// session is one wire connection's state.
type session struct {
	s       *Server
	conn    net.Conn
	cc      *countingConn
	r       *frameReader
	w       *frameWriter
	id      uint64
	tenant  string
	stmts   map[uint32]*prepared
	stmtSeq uint32
	// busy is true while a request is being served; Shutdown closes
	// only idle connections, so in-flight responses complete.
	busy atomic.Bool
	// responseStarted flips once any response frame for the current
	// request is on the wire; a panic after that point cannot be
	// reported in-band, so the connection dies instead.
	responseStarted bool
	encBuf          []byte
}

type frameReader struct {
	c       net.Conn
	scratch []byte
}

type frameWriter struct {
	c   net.Conn
	buf []byte
}

func (s *Server) newSession(c net.Conn) *session {
	cc := &countingConn{Conn: c, s: s}
	return &session{
		s:     s,
		conn:  c,
		cc:    cc,
		r:     &frameReader{c: cc},
		w:     &frameWriter{c: cc},
		id:    s.sessionSeq.Add(1),
		stmts: make(map[uint32]*prepared),
	}
}

func (r *frameReader) read() (byte, []byte, error) {
	typ, payload, scratch, err := ReadFrame(r.c, MaxClientFrame, r.scratch)
	r.scratch = scratch
	return typ, payload, err
}

// armIdle sets the read deadline for the next request frame. The
// deadline covers the whole inter-request gap plus the frame's own
// arrival, so a silent peer (or one that trickles half a frame and
// stops) is reaped rather than parking the goroutine forever. It is
// re-armed per request, never during response streaming — writes run
// under their own deadline.
func (sess *session) armIdle() error {
	t := sess.s.cfg.IdleTimeout
	if t < 0 {
		return sess.conn.SetReadDeadline(time.Time{})
	}
	return sess.conn.SetReadDeadline(time.Now().Add(t))
}

// noteReadErr classifies a request-read failure for the stats counters:
// a deadline expiry is an idle reap, everything else is a normal
// disconnect or protocol failure.
func (sess *session) noteReadErr(err error) {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		sess.s.idleClosed.Add(1)
	}
}

// write frames one payload and writes it under the session's write
// deadline. Frames are written whole — no separate flush step — so a
// stalled client surfaces as a deadline error on the very frame that
// stalled, with the admission slot still held (that is the
// backpressure signal).
func (sess *session) write(typ byte, payload []byte) error {
	w := sess.w
	w.buf = w.buf[:0]
	w.buf = appendU32(w.buf, uint32(len(payload))+1)
	w.buf = appendU8(w.buf, typ)
	w.buf = append(w.buf, payload...)
	if err := sess.conn.SetWriteDeadline(time.Now().Add(sess.s.cfg.WriteTimeout)); err != nil {
		return err
	}
	_, err := w.c.Write(w.buf)
	sess.responseStarted = true
	return err
}

func (sess *session) writeError(code, msg string, retry time.Duration) error {
	sess.s.errorsSent.Add(1)
	sess.encBuf = AppendError(sess.encBuf[:0], &ErrorFrame{
		Code: code, Message: msg, RetryAfterNs: retry.Nanoseconds(),
	})
	return sess.write(FrameError, sess.encBuf)
}

// serveConn runs one connection: Hello handshake, then a sequential
// request/response loop. The outer recover guard is the last line of
// defence — per-request panics are absorbed by dispatch and answered
// in-band; only a panic in the loop machinery itself lands here.
func (s *Server) serveConn(sess *session) {
	defer func() {
		if p := recover(); p != nil {
			s.panics.Add(1)
			s.cfg.Core.RecordHandlerPanic(p, debug.Stack())
		}
		sess.conn.Close()
		s.stmtsOpen.Add(-int64(len(sess.stmts)))
		s.mu.Lock()
		delete(s.conns, sess)
		s.mu.Unlock()
		s.connsOpen.Add(-1)
		s.wg.Done()
	}()
	if err := sess.handshake(); err != nil {
		return
	}
	for {
		if err := sess.armIdle(); err != nil {
			return
		}
		typ, payload, err := sess.r.read()
		if err != nil {
			sess.noteReadErr(err)
			var tooBig *ErrFrameTooLarge
			if errors.As(err, &tooBig) {
				sess.busy.Store(true)
				sess.writeError("protocol_error", err.Error(), 0)
			}
			return
		}
		sess.busy.Store(true)
		sess.responseStarted = false
		fatal := sess.dispatch(typ, payload)
		sess.busy.Store(false)
		if fatal {
			return
		}
	}
}

// handshake consumes the Hello frame and acknowledges it. Any deviation
// is fatal: the protocol starts with Hello or not at all.
func (sess *session) handshake() error {
	if err := sess.armIdle(); err != nil {
		return err
	}
	typ, payload, err := sess.r.read()
	if err != nil {
		sess.noteReadErr(err)
		var tooBig *ErrFrameTooLarge
		if errors.As(err, &tooBig) {
			sess.busy.Store(true)
			defer sess.busy.Store(false)
			sess.writeError("protocol_error", err.Error(), 0)
		}
		return err
	}
	sess.busy.Store(true)
	defer sess.busy.Store(false)
	if typ != FrameHello {
		sess.writeError("protocol_error", fmt.Sprintf("expected Hello, got frame 0x%02x", typ), 0)
		return errors.New("wire: no hello")
	}
	c := cursor{p: payload}
	version := c.u8()
	tenant := c.str()
	if err := c.done(); err != nil {
		sess.writeError("protocol_error", err.Error(), 0)
		return err
	}
	if version > ProtocolVersion {
		sess.writeError("protocol_error",
			fmt.Sprintf("protocol version %d not supported (max %d)", version, ProtocolVersion), 0)
		return errors.New("wire: version mismatch")
	}
	sess.tenant = tenant
	sess.encBuf = appendU8(sess.encBuf[:0], ProtocolVersion)
	sess.encBuf = appendU64(sess.encBuf, sess.id)
	return sess.write(FrameHelloOK, sess.encBuf)
}

// dispatch serves one request frame. It returns true when the
// connection is beyond recovery (protocol violation, I/O failure, or a
// panic after response bytes already left). A panic before any response
// byte is answered with an internal_panic error frame and the session
// continues — the wire twin of the HTTP recover middleware.
func (sess *session) dispatch(typ byte, payload []byte) (fatal bool) {
	defer func() {
		if p := recover(); p != nil {
			sess.s.panics.Add(1)
			sess.s.cfg.Core.RecordHandlerPanic(p, debug.Stack())
			if sess.responseStarted {
				fatal = true
				return
			}
			fatal = sess.writeError("internal_panic", "internal error serving the request", 0) != nil
		}
	}()
	switch typ {
	case FrameQuery:
		return sess.handleQuery(payload)
	case FramePrepare:
		return sess.handlePrepare(payload)
	case FrameExecute:
		return sess.handleExecute(payload)
	case FrameCloseStmt:
		return sess.handleCloseStmt(payload)
	case FrameBye:
		return true
	default:
		sess.writeError("protocol_error", fmt.Sprintf("unknown frame type 0x%02x", typ), 0)
		return true
	}
}

func (sess *session) handleQuery(payload []byte) bool {
	c := cursor{p: payload}
	sql := c.str()
	if err := c.done(); err != nil {
		sess.writeError("protocol_error", err.Error(), 0)
		return true
	}
	sess.s.queries.Add(1)
	if sql == "" {
		return sess.writeError("bad_request", "empty SQL", 0) != nil
	}
	// Reject malformed SQL before spending an admission slot, same as
	// the HTTP path; CheckSQL consults the plan cache first.
	if err := sess.s.cfg.Core.CheckSQL(sql); err != nil {
		return sess.writeError("parse_error", err.Error(), 0) != nil
	}
	return sess.runQuery(sql, nil)
}

func (sess *session) handlePrepare(payload []byte) bool {
	c := cursor{p: payload}
	sql := c.str()
	if err := c.done(); err != nil {
		sess.writeError("protocol_error", err.Error(), 0)
		return true
	}
	sess.s.prepares.Add(1)
	if sql == "" {
		return sess.writeError("bad_request", "empty SQL", 0) != nil
	}
	if len(sess.stmts) >= maxStmts {
		return sess.writeError("bad_request",
			fmt.Sprintf("session holds %d prepared statements; close some first", maxStmts), 0) != nil
	}
	if err := sess.s.cfg.Core.CheckSQL(sql); err != nil {
		return sess.writeError("parse_error", err.Error(), 0) != nil
	}
	// The parameter count is the statement's parameterisable-literal
	// count in token order — the exact slots ParseBound rebinds.
	_, lits, ok := sqlparse.Fingerprint(nil, nil, sql)
	nparams := 0
	if ok {
		nparams = len(lits)
	}
	sess.stmtSeq++
	id := sess.stmtSeq
	sess.stmts[id] = &prepared{sql: sql, nparams: nparams}
	sess.s.stmtsOpen.Add(1)
	sess.encBuf = appendU32(sess.encBuf[:0], id)
	sess.encBuf = appendU16(sess.encBuf, uint16(nparams))
	return sess.write(FramePrepareOK, sess.encBuf) != nil
}

func (sess *session) handleExecute(payload []byte) bool {
	c := cursor{p: payload}
	id := c.u32()
	nlits := int(c.u16())
	if c.bad || nlits > c.remaining() {
		sess.writeError("protocol_error", "truncated Execute payload", 0)
		return true
	}
	lits := make([]float64, nlits)
	for i := range lits {
		lits[i] = c.f64()
	}
	if err := c.done(); err != nil {
		sess.writeError("protocol_error", err.Error(), 0)
		return true
	}
	sess.s.executes.Add(1)
	st, ok := sess.stmts[id]
	if !ok {
		return sess.writeError("bad_request", fmt.Sprintf("unknown statement id %d", id), 0) != nil
	}
	if nlits == 0 {
		// Verbatim re-execution: the statement's own spelling goes back
		// through ExecTenant, so a warm session hits the plan cache's
		// alias tier — zero parse allocations per execution.
		return sess.runQuery(st.sql, nil)
	}
	if nlits != st.nparams {
		return sess.writeError("bad_request",
			fmt.Sprintf("statement %d takes %d parameters, got %d", id, st.nparams, nlits), 0) != nil
	}
	bound, err := sqlparse.ParseBound(st.sql, lits)
	if err != nil {
		return sess.writeError("parse_error", err.Error(), 0) != nil
	}
	return sess.runQuery(st.sql, bound)
}

func (sess *session) handleCloseStmt(payload []byte) bool {
	c := cursor{p: payload}
	id := c.u32()
	if err := c.done(); err != nil {
		sess.writeError("protocol_error", err.Error(), 0)
		return true
	}
	// Fire-and-forget and idempotent: no reply frame, unknown ids are
	// ignored. The client's next request stays in lockstep because the
	// server processes frames strictly in order.
	if _, ok := sess.stmts[id]; ok {
		delete(sess.stmts, id)
		sess.s.stmtsOpen.Add(-1)
	}
	return false
}

// runQuery executes one statement through the shared serving pipeline —
// memory gate, admission queue, fault point, deadline, tenant
// accounting — and streams the result. st non-nil means a
// literal-rebound prepared statement, which must bypass the plan cache
// (ExecStatementTenant) so the rebound AST is never admitted under the
// representative SQL spelling.
func (sess *session) runQuery(sql string, st *sqlparse.Statement) bool {
	s := sess.s
	core := s.cfg.Core
	if retry, refuse := core.GateMemory(); refuse {
		return sess.writeError("memory_pressure",
			"server is under memory pressure; retry shortly", retry) != nil
	}
	adm := core.Admission()
	// Unlike HTTP there is no request context to abandon the queue
	// with: the client blocks on the reply. Drain still unblocks queued
	// waiters with ErrDraining.
	release, queued, err := adm.Acquire(context.Background())
	if err != nil {
		switch {
		case errors.Is(err, server.ErrOverloaded):
			return sess.writeError("overloaded", err.Error(), adm.RetryAfter()) != nil
		case errors.Is(err, server.ErrDraining):
			return sess.writeError("draining", err.Error(), adm.RetryAfter()) != nil
		default:
			return sess.writeError("canceled", err.Error(), adm.RetryAfter()) != nil
		}
	}
	defer release()

	// The fault point fires with the slot held and release deferred —
	// an injected panic here must unwind without leaking the slot,
	// exactly as on the HTTP path.
	if err := faultinject.Fire(faultinject.PointQuery); err != nil {
		return sess.writeError("injected_fault", err.Error(), 0) != nil
	}

	ctx := context.Background()
	if s.cfg.MaxQueryTime > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.MaxQueryTime)
		defer cancel()
	}

	start := time.Now()
	var res *sciborq.Result
	if st != nil {
		res, err = s.cfg.DB.ExecStatementTenant(ctx, sess.tenant, st, sql)
	} else {
		res, err = s.cfg.DB.ExecTenant(ctx, sess.tenant, sql)
	}
	elapsed := time.Since(start)
	core.NoteOutcome(sess.tenant, res, err, elapsed)
	if err != nil {
		var pe *engine.PanicError
		switch {
		case errors.As(err, &pe):
			core.RecordQueryPanic(pe.Value, pe.Stack)
			return sess.writeError("query_panic",
				"a query worker panicked; the query was aborted", 0) != nil
		case errors.Is(err, context.DeadlineExceeded):
			return sess.writeError("timeout",
				"query exceeded the server's max query time", 0) != nil
		case errors.Is(err, context.Canceled):
			return sess.writeError("canceled", "query canceled", 0) != nil
		default:
			return sess.writeError("exec_error", err.Error(), 0) != nil
		}
	}
	return sess.streamResult(res, elapsed, queued) != nil
}

// streamResult writes the response frames for one successful query.
// Exact results stream as Header + batches + End with no row cap —
// each batch is written (and therefore flushed to the socket) before
// the next is encoded, so a slow reader throttles the stream while the
// admission slot is held. Bounded answers are one typed frame.
func (sess *session) streamResult(res *sciborq.Result, elapsed, queued time.Duration) error {
	if ans := res.Bounded; ans != nil {
		b := &Bounded{
			Layer:      ans.Layer,
			Exact:      ans.Exact,
			BoundMet:   ans.BoundMet,
			PromisedNs: ans.Promised.Nanoseconds(),
			Estimates:  make([]EstimateW, 0, len(ans.Estimates)),
			Trail:      make([]TrailW, 0, len(ans.Trail)),
		}
		for _, e := range ans.Estimates {
			b.Estimates = append(b.Estimates, EstimateW{
				Name:       e.Spec.Name(),
				Value:      e.Value(),
				HalfWidth:  e.Interval.HalfWidth,
				Confidence: e.Interval.Level,
				RelError:   e.RelError(),
				Exact:      e.Exact,
				SampleRows: uint32(e.SampleRows),
			})
		}
		for _, step := range ans.Trail {
			b.Trail = append(b.Trail, TrailW{
				Layer:     step.Layer,
				Rows:      uint32(step.Rows),
				ElapsedNs: step.Elapsed.Nanoseconds(),
				Satisfied: step.Satisfied,
			})
		}
		sess.encBuf = AppendBounded(sess.encBuf[:0], b)
		if err := sess.write(FrameBounded, sess.encBuf); err != nil {
			return err
		}
		return sess.writeEnd(0, elapsed, queued)
	}
	if res.Rows == nil {
		return sess.writeEnd(0, elapsed, queued)
	}

	t := res.Rows.Table
	schema := t.Schema()
	n := t.Len()
	cols := make([]column.Column, len(schema))
	for i, def := range schema {
		c, err := t.Col(def.Name)
		if err != nil {
			return sess.writeError("exec_error", err.Error(), 0)
		}
		cols[i] = c
	}
	h := Header{RowCount: uint64(n), Cols: make([]Col, len(schema))}
	for i, def := range schema {
		h.Cols[i] = Col{Name: def.Name, Type: byte(cols[i].Type())}
	}
	sess.encBuf = AppendHeader(sess.encBuf[:0], &h)
	if err := sess.write(FrameHeader, sess.encBuf); err != nil {
		return err
	}
	for lo := 0; lo < n; lo += sess.s.cfg.BatchRows {
		hi := lo + sess.s.cfg.BatchRows
		if hi > n {
			hi = n
		}
		sess.encBuf = AppendBatch(sess.encBuf[:0], cols, lo, hi)
		if err := sess.write(FrameBatch, sess.encBuf); err != nil {
			return err
		}
		sess.s.batches.Add(1)
		sess.s.rowsOut.Add(int64(hi - lo))
	}
	return sess.writeEnd(uint64(n), elapsed, queued)
}

func (sess *session) writeEnd(rows uint64, elapsed, queued time.Duration) error {
	sess.encBuf = AppendEnd(sess.encBuf[:0], &End{
		Rows:      rows,
		ElapsedNs: elapsed.Nanoseconds(),
		QueueNs:   queued.Nanoseconds(),
	})
	return sess.write(FrameEnd, sess.encBuf)
}
