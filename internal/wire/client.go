package wire

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"time"
)

// Client is the in-repo wire-protocol client used by tests, benchmarks,
// and the chaos suite. One Client is one session on one connection;
// requests are sequential (the protocol has no pipelining), so a Client
// is not safe for concurrent use — open one per goroutine.
type Client struct {
	conn    net.Conn
	r       *bufio.Reader
	w       *bufio.Writer
	scratch []byte
	enc     []byte

	// SessionID is the server-assigned session id from the handshake.
	SessionID uint64
}

// Stmt is a server-side prepared statement handle.
type Stmt struct {
	ID uint32
	// NumParams is how many float64 literals Execute may rebind — the
	// statement's parameterisable numeric literals in token order.
	NumParams int
}

// ServerError is a decoded error frame.
type ServerError struct {
	Code       string
	Message    string
	RetryAfter time.Duration
}

func (e *ServerError) Error() string {
	return fmt.Sprintf("wire: server error %s: %s", e.Code, e.Message)
}

// Response is one query's decoded answer: exactly one of Exact or
// Bounded is set (both nil for an empty result), plus the End frame's
// server-side accounting.
type Response struct {
	Exact     *ExactResult
	Bounded   *Bounded
	Rows      uint64
	ElapsedNs int64
	QueueNs   int64
}

// ExactResult is a fully accumulated streamed result: the header's
// column layout plus per-column value slices concatenated across
// batches.
type ExactResult struct {
	Cols   []Col
	Blocks []ColBlock
	rows   int
}

// NumRows returns the accumulated row count.
func (r *ExactResult) NumRows() int { return r.rows }

// RowStrings renders row i with the same formatting as the engine's
// table renderer (%g / %d / %t / raw string), so equivalence tests can
// compare against HTTP JSON rows directly.
func (r *ExactResult) RowStrings(i int) []string {
	out := make([]string, len(r.Blocks))
	for k, b := range r.Blocks {
		switch b.Type {
		case TypeFloat64:
			out[k] = fmt.Sprintf("%g", b.F64[i])
		case TypeInt64:
			out[k] = strconv.FormatInt(b.I64[i], 10)
		case TypeBool:
			out[k] = strconv.FormatBool(b.Bool[i])
		default:
			out[k] = b.Str[i]
		}
	}
	return out
}

// Dial opens a connection to a wire listener and performs the Hello
// handshake on behalf of tenant.
func Dial(addr, tenant string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn: conn,
		r:    bufio.NewReaderSize(conn, 64<<10),
		w:    bufio.NewWriterSize(conn, 64<<10),
	}
	c.enc = appendU8(c.enc[:0], ProtocolVersion)
	c.enc = appendStr(c.enc, tenant)
	if err := c.send(FrameHello, c.enc); err != nil {
		conn.Close()
		return nil, err
	}
	typ, payload, err := c.read()
	if err != nil {
		conn.Close()
		return nil, err
	}
	if typ == FrameError {
		defer conn.Close()
		return nil, decodeServerError(payload)
	}
	if typ != FrameHelloOK {
		conn.Close()
		return nil, fmt.Errorf("wire: expected HelloOK, got frame 0x%02x", typ)
	}
	cur := cursor{p: payload}
	version := cur.u8()
	c.SessionID = cur.u64()
	if err := cur.done(); err != nil {
		conn.Close()
		return nil, err
	}
	if version != ProtocolVersion {
		conn.Close()
		return nil, fmt.Errorf("wire: server speaks protocol %d, want %d", version, ProtocolVersion)
	}
	return c, nil
}

// Close sends Bye and closes the connection.
func (c *Client) Close() error {
	c.send(FrameBye, nil) // best-effort courtesy
	return c.conn.Close()
}

// Query executes one SQL statement and accumulates the full streamed
// response — every batch, no truncation.
func (c *Client) Query(sql string) (*Response, error) {
	c.enc = appendStr(c.enc[:0], sql)
	if err := c.send(FrameQuery, c.enc); err != nil {
		return nil, err
	}
	return c.readResponse()
}

// Prepare registers sql as a session prepared statement.
func (c *Client) Prepare(sql string) (*Stmt, error) {
	c.enc = appendStr(c.enc[:0], sql)
	if err := c.send(FramePrepare, c.enc); err != nil {
		return nil, err
	}
	typ, payload, err := c.read()
	if err != nil {
		return nil, err
	}
	if typ == FrameError {
		return nil, decodeServerError(payload)
	}
	if typ != FramePrepareOK {
		return nil, fmt.Errorf("wire: expected PrepareOK, got frame 0x%02x", typ)
	}
	cur := cursor{p: payload}
	st := &Stmt{ID: cur.u32(), NumParams: int(cur.u16())}
	if err := cur.done(); err != nil {
		return nil, err
	}
	return st, nil
}

// Execute runs a prepared statement. With no lits the statement
// re-executes verbatim (the plan-cache fast path); with exactly
// NumParams lits the statement's numeric literals are rebound in token
// order.
func (c *Client) Execute(st *Stmt, lits ...float64) (*Response, error) {
	c.enc = appendU32(c.enc[:0], st.ID)
	c.enc = appendU16(c.enc, uint16(len(lits)))
	for _, v := range lits {
		c.enc = appendF64(c.enc, v)
	}
	if err := c.send(FrameExecute, c.enc); err != nil {
		return nil, err
	}
	return c.readResponse()
}

// CloseStmt discards a prepared statement. It is fire-and-forget: the
// server sends no acknowledgement.
func (c *Client) CloseStmt(st *Stmt) error {
	c.enc = appendU32(c.enc[:0], st.ID)
	return c.send(FrameCloseStmt, c.enc)
}

func (c *Client) send(typ byte, payload []byte) error {
	if err := WriteFrame(c.w, typ, payload); err != nil {
		return err
	}
	return c.w.Flush()
}

func (c *Client) read() (byte, []byte, error) {
	typ, payload, scratch, err := ReadFrame(c.r, MaxServerFrame, c.scratch)
	c.scratch = scratch
	return typ, payload, err
}

// readResponse consumes one full response: an error frame, a bounded
// frame + End, or a header + batch stream + End.
func (c *Client) readResponse() (*Response, error) {
	typ, payload, err := c.read()
	if err != nil {
		return nil, err
	}
	switch typ {
	case FrameError:
		return nil, decodeServerError(payload)
	case FrameBounded:
		b, err := DecodeBounded(payload)
		if err != nil {
			return nil, err
		}
		resp := &Response{Bounded: b}
		return resp, c.readEnd(resp)
	case FrameEnd:
		resp := &Response{}
		return resp, decodeEndInto(payload, resp)
	case FrameHeader:
		h, err := DecodeHeader(payload)
		if err != nil {
			return nil, err
		}
		ex := &ExactResult{Cols: h.Cols, Blocks: make([]ColBlock, len(h.Cols))}
		for i, col := range h.Cols {
			ex.Blocks[i].Type = col.Type
		}
		for {
			typ, payload, err := c.read()
			if err != nil {
				return nil, err
			}
			switch typ {
			case FrameBatch:
				ba, err := DecodeBatch(payload)
				if err != nil {
					return nil, err
				}
				if len(ba.Cols) != len(ex.Blocks) {
					return nil, fmt.Errorf("wire: batch has %d columns, header declared %d",
						len(ba.Cols), len(ex.Blocks))
				}
				for i := range ba.Cols {
					if ba.Cols[i].Type != ex.Blocks[i].Type {
						return nil, fmt.Errorf("wire: column %d type changed mid-stream", i)
					}
					ex.Blocks[i].F64 = append(ex.Blocks[i].F64, ba.Cols[i].F64...)
					ex.Blocks[i].I64 = append(ex.Blocks[i].I64, ba.Cols[i].I64...)
					ex.Blocks[i].Bool = append(ex.Blocks[i].Bool, ba.Cols[i].Bool...)
					ex.Blocks[i].Str = append(ex.Blocks[i].Str, ba.Cols[i].Str...)
				}
				ex.rows += ba.Rows
			case FrameEnd:
				resp := &Response{Exact: ex}
				if err := decodeEndInto(payload, resp); err != nil {
					return nil, err
				}
				if uint64(ex.rows) != h.RowCount || resp.Rows != h.RowCount {
					return nil, fmt.Errorf("wire: header promised %d rows, streamed %d, end reported %d",
						h.RowCount, ex.rows, resp.Rows)
				}
				return resp, nil
			case FrameError:
				return nil, decodeServerError(payload)
			default:
				return nil, fmt.Errorf("wire: unexpected frame 0x%02x mid-stream", typ)
			}
		}
	default:
		return nil, fmt.Errorf("wire: unexpected response frame 0x%02x", typ)
	}
}

func (c *Client) readEnd(resp *Response) error {
	typ, payload, err := c.read()
	if err != nil {
		return err
	}
	if typ != FrameEnd {
		return fmt.Errorf("wire: expected End, got frame 0x%02x", typ)
	}
	return decodeEndInto(payload, resp)
}

func decodeEndInto(payload []byte, resp *Response) error {
	e, err := DecodeEnd(payload)
	if err != nil {
		return err
	}
	resp.Rows = e.Rows
	resp.ElapsedNs = e.ElapsedNs
	resp.QueueNs = e.QueueNs
	return nil
}

func decodeServerError(payload []byte) error {
	e, err := DecodeError(payload)
	if err != nil {
		return err
	}
	return &ServerError{
		Code:       e.Code,
		Message:    e.Message,
		RetryAfter: time.Duration(e.RetryAfterNs),
	}
}
