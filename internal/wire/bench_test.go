package wire

import (
	"encoding/json"
	"io"
	"testing"

	"sciborq"
	"sciborq/internal/column"
	"sciborq/internal/server"
	"sciborq/internal/table"
)

// benchRows sizes the benchmark result: large enough to amortise the
// per-response frames, small enough to iterate.
const benchRows = 100_000

// benchTable builds a mixed-type result table with realistic SkyServer
// value shapes — 18-digit bit-packed objIDs and full-precision
// coordinates, the way SDSS actually ships them — so the bytes/row
// comparison reflects real payloads, not short synthetic strings.
func benchTable(tb testing.TB) *table.Table {
	tb.Helper()
	words := []string{"STAR", "GALAXY", "QSO", "SKY", "DEBRIS", "GHOST", "TRAIL", "BLEND"}
	objID := column.NewInt64("objID")
	ra := column.NewFloat64("ra")
	dec := column.NewFloat64("dec")
	typ := column.NewString("type")
	clean := column.NewBool("clean")
	const objIDBase = 1237648721000000000 // SDSS-style packed sky-version/rerun/camcol id
	for i := 0; i < benchRows; i++ {
		objID.Append(objIDBase + int64(i)*7919)
		ra.Append(150 + float64(i)*(0.0391/float64(benchRows))*777.77)
		dec.Append(-5 + float64(i)*(0.0173/float64(benchRows))*333.33)
		typ.Append(words[i%len(words)])
		clean.Append(i%3 != 0)
	}
	t, err := table.New("Mixed", table.Schema{
		{Name: "objID", Type: column.Int64},
		{Name: "ra", Type: column.Float64},
		{Name: "dec", Type: column.Float64},
		{Name: "type", Type: column.String},
		{Name: "clean", Type: column.Bool},
	})
	if err != nil {
		tb.Fatal(err)
	}
	if err := t.AppendColumns([]column.Column{objID, ra, dec, typ, clean}); err != nil {
		tb.Fatal(err)
	}
	return t
}

func benchCols(tb testing.TB, t *table.Table) []column.Column {
	tb.Helper()
	cols := make([]column.Column, len(t.Schema()))
	for i, def := range t.Schema() {
		c, err := t.Col(def.Name)
		if err != nil {
			tb.Fatal(err)
		}
		cols[i] = c
	}
	return cols
}

// BenchmarkWireEncode measures the columnar batch encoder alone:
// bytes/row and rows/s for the full mixed-type table, batched the way
// the server streams it.
func BenchmarkWireEncode(b *testing.B) {
	t := benchTable(b)
	cols := benchCols(b, t)
	var buf []byte
	var bytesOut int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for lo := 0; lo < benchRows; lo += defaultBatchRows {
			hi := lo + defaultBatchRows
			if hi > benchRows {
				hi = benchRows
			}
			buf = AppendBatch(buf[:0], cols, lo, hi)
			bytesOut += int64(len(buf))
		}
	}
	b.StopTimer()
	rows := float64(b.N) * benchRows
	b.ReportMetric(float64(bytesOut)/rows, "bytes/row")
	b.ReportMetric(rows/b.Elapsed().Seconds(), "rows/s")
}

// BenchmarkJSONEncode measures the HTTP transport's rendering of the
// same table: RowStrings per row into the exact-result JSON shape,
// encoded with the server's indented encoder.
func BenchmarkJSONEncode(b *testing.B) {
	t := benchTable(b)
	type exactJSON struct {
		Columns   []string   `json:"columns"`
		Rows      [][]string `json:"rows"`
		RowCount  int        `json:"row_count"`
		Truncated bool       `json:"truncated"`
	}
	cw := &countWriter{w: io.Discard}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := make([][]string, benchRows)
		for r := 0; r < benchRows; r++ {
			rows[r] = t.RowStrings(int32(r))
		}
		enc := json.NewEncoder(cw)
		enc.SetIndent("", "  ")
		if err := enc.Encode(exactJSON{
			Columns:  t.Schema().Names(),
			Rows:     rows,
			RowCount: benchRows,
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	rows := float64(b.N) * benchRows
	b.ReportMetric(float64(cw.n)/rows, "bytes/row")
	b.ReportMetric(rows/b.Elapsed().Seconds(), "rows/s")
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// BenchmarkWireStream measures the full transport: server-side
// execution + encoding + TCP + client-side decoding of the mixed-type
// projection, with bytes/row taken from the server's own byte counters.
func BenchmarkWireStream(b *testing.B) {
	t := benchTable(b)
	db := sciborq.Open()
	if err := db.AttachTable(t); err != nil {
		b.Fatal(err)
	}
	_, ws, addr := startWire(b, db, server.Config{MaxInFlight: 2}, Config{})
	c, err := Dial(addr, "")
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	const sql = "SELECT objID, ra, dec, type, clean FROM Mixed"
	start := ws.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := c.Query(sql)
		if err != nil {
			b.Fatal(err)
		}
		if resp.Exact.NumRows() != benchRows {
			b.Fatalf("streamed %d rows", resp.Exact.NumRows())
		}
	}
	b.StopTimer()
	end := ws.Stats()
	rows := float64(b.N) * benchRows
	b.ReportMetric(float64(end.BytesOut-start.BytesOut)/rows, "bytes/row")
	b.ReportMetric(rows/b.Elapsed().Seconds(), "rows/s")
}
