package segment

import (
	"testing"

	"sciborq/internal/column"
	"sciborq/internal/table"
)

// benchStore builds a sealed 4-granule durable store (x f64 + k i64,
// 512K rows) with a tracking granule cache, returning the mapped x
// column for scanning.
func benchStore(b *testing.B) (*Store, *Cache, []float64) {
	b.Helper()
	tb := table.MustNew("bench", table.Schema{
		{Name: "x", Type: column.Float64},
		{Name: "k", Type: column.Int64},
	})
	cache := NewCache(0) // track-only: benchmarks evict explicitly
	s, err := Open(tb, Options{Dir: b.TempDir(), Cache: cache})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	const total = 4 * granuleRows
	batch := make([]table.Row, 0, 16384)
	for lo := 0; lo < total; lo += cap(batch) {
		batch = batch[:0]
		for i := lo; i < lo+cap(batch); i++ {
			batch = append(batch, table.Row{float64(i), int64(i)})
		}
		if err := s.LoadBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Seal(); err != nil {
		b.Fatal(err)
	}
	data, err := tb.Float64("x")
	if err != nil {
		b.Fatal(err)
	}
	return s, cache, data
}

// BenchmarkSegmentScan compares scanning a durable column with its
// granules resident against scanning after every granule was advised
// out of the mapping — the steady-state vs cold-fault cost a
// larger-than-budget table pays per touch.
func BenchmarkSegmentScan(b *testing.B) {
	s, cache, data := benchStore(b)
	scan := func() float64 {
		sum := 0.0
		for _, v := range data {
			sum += v
		}
		return sum
	}
	bytesPerScan := int64(len(data)) * 8

	b.Run("resident", func(b *testing.B) {
		s.Touch(0, len(data))
		scan() // fault everything in once
		b.SetBytes(bytesPerScan)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Touch(0, len(data))
			if scan() == -1 {
				b.Fatal("impossible")
			}
		}
	})
	b.Run("cold", func(b *testing.B) {
		b.SetBytes(bytesPerScan)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cache.Shed(1 << 62) // advise every granule out
			b.StartTimer()
			s.Touch(0, len(data))
			if scan() == -1 {
				b.Fatal("impossible")
			}
		}
	})
}
