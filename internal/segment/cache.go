package segment

import (
	"container/list"
	"sync"

	"sciborq/internal/column"
)

// Cache is the process-wide granule-residency accountant: every morsel
// the engine actually reads (post zone-pruning) touches its granules
// here, and when the resident estimate exceeds the byte budget the
// coldest granules are advised out of their stores' mappings
// (madvise(MADV_DONTNEED)) — so a table can be larger than RAM with hot
// granules resident and cold ones refaulting from disk on demand. The
// cache also registers with the memory governor as a shed tier
// ("storage.granules"): under global pressure it gives ground before
// the recycler, since a granule refault is one read, not a scan.
//
// Residency here is an estimate, not ground truth — the kernel pages
// data in and out on its own. The estimate is what makes eviction
// proactive and observable (/stats) instead of leaving cold tables to
// swap pressure.
type Cache struct {
	mu       sync.Mutex
	budget   int64 // <= 0: track only, never evict
	lru      *list.List
	entries  map[granKey]*list.Element
	resident int64

	touches   int64
	faults    int64
	evictions int64
}

type granKey struct {
	store *Store
	g     int
}

type granEntry struct {
	key   granKey
	bytes int64
}

// NewCache builds a granule cache with the given byte budget; <= 0
// disables eviction (residency is still tracked for /stats).
func NewCache(budget int64) *Cache {
	return &Cache{budget: budget, lru: list.New(), entries: make(map[granKey]*list.Element)}
}

// touch marks granules [g0, g1] of s hot, faulting in absentees and
// evicting over-budget cold granules.
func (c *Cache) touch(s *Store, g0, g1 int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Re-check closed under Cache.mu (Touch's unlocked check can race
	// Store.Close): Close sets closed before calling forget, so passing
	// this check means forget has not swept yet and will still remove
	// anything admitted here — a closing store can never leak entries
	// into the residency estimate.
	if s.closed.Load() {
		return
	}
	for g := g0; g <= g1; g++ {
		key := granKey{store: s, g: g}
		if el, ok := c.entries[key]; ok {
			c.lru.MoveToFront(el)
			c.touches++
			continue
		}
		bytes := s.granuleBytes(g)
		c.entries[key] = c.lru.PushFront(&granEntry{key: key, bytes: bytes})
		c.resident += bytes
		c.faults++
	}
	if c.budget > 0 {
		c.evictLocked(c.resident - c.budget)
	}
}

// evictLocked releases cold granules until at least need bytes are
// freed (or the LRU is empty), returning the bytes freed.
func (c *Cache) evictLocked(need int64) int64 {
	var freed int64
	for freed < need {
		el := c.lru.Back()
		if el == nil {
			break
		}
		e := el.Value.(*granEntry)
		c.lru.Remove(el)
		delete(c.entries, e.key)
		e.key.store.evictGranule(e.key.g)
		c.resident -= e.bytes
		freed += e.bytes
		c.evictions++
	}
	return freed
}

// forget drops every entry of s without advising (the store is
// closing; its mappings are about to go away).
func (c *Cache) forget(s *Store) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, el := range c.entries {
		if key.store != s {
			continue
		}
		e := el.Value.(*granEntry)
		c.lru.Remove(el)
		delete(c.entries, key)
		c.resident -= e.bytes
	}
}

// Usage reports the resident-byte estimate — the governor's usage probe.
func (c *Cache) Usage() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resident
}

// Shed releases up to bytes of the coldest granules — the governor's
// shed hook for the "storage.granules" tier.
func (c *Cache) Shed(bytes int64) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictLocked(bytes)
}

// CacheStats is the /stats view of granule residency.
type CacheStats struct {
	BudgetBytes   int64 `json:"budget_bytes"`
	ResidentBytes int64 `json:"resident_bytes"`
	Granules      int   `json:"granules"`
	Touches       int64 `json:"touches"`
	Faults        int64 `json:"faults"`
	Evictions     int64 `json:"evictions"`
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		BudgetBytes:   c.budget,
		ResidentBytes: c.resident,
		Granules:      len(c.entries),
		Touches:       c.touches,
		Faults:        c.faults,
		Evictions:     c.evictions,
	}
}

// granuleRows is the residency unit: the engine's zone-map granule, so
// touch accounting aligns with morsel pruning.
const granuleRows = column.ZoneRows
