package segment

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"

	"sciborq/internal/column"
	"sciborq/internal/faultinject"
	"sciborq/internal/table"
)

// Write-ahead log. One record per Load batch, appended and fsynced
// before the batch is acknowledged, so an acknowledged batch survives
// any crash. Record grammar (all integers little-endian):
//
//	record  := u32 payloadLen | u32 crc32(payload) | payload
//	payload := u64 seq | u32 nrows | column data in schema order
//	column  := f64/i64: 8 bytes per row (IEEE 754 bits / two's complement)
//	           bool:    1 byte per row (0x00 / 0x01)
//	           varchar: per row u32 byteLen | bytes (values, not codes —
//	                    replay re-interns, so dictionaries rebuild
//	                    deterministically in first-use order)
//
// Replay walks records from the start, verifying length and CRC. The
// first record that is short or fails its CRC is a torn tail — the
// write the crash interrupted — and everything from it on is truncated
// away. That is exactly batch atomicity: a batch is either fully in the
// log (it was acknowledged) or absent (it was not).
type wal struct {
	path string
	f    *os.File
	off  int64 // current end of good records
	// failed is set when a truncate fails and the log's on-disk extent
	// is ambiguous: appending at the stale off could leave a gap replay
	// would read as a torn tail, silently dropping acknowledged records
	// behind it. A failed WAL refuses all further appends; the store
	// surfaces the error to every subsequent LoadBatch.
	failed error
}

// walHeaderSize is the fixed record prefix: u32 len + u32 crc.
const walHeaderSize = 8

// openWAL opens (creating if absent) the log. The caller replays before
// appending; replay establishes off.
func openWAL(path string) (*wal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return &wal{path: path, f: f}, nil
}

// append writes one record and syncs it to stable storage; only after
// it returns nil may the batch be acknowledged. The faultinject point
// PointWAL fires after serialisation: an injected error makes append
// write a deliberately torn prefix of the record (header plus half the
// payload) and fail — on-disk state identical to a crash mid-write,
// which is how the recovery property test simulates kills at seeded
// offsets without spawning processes. Returns the record's start
// offset, which the caller uses to un-ack (truncate) if the in-memory
// fold fails after the WAL write succeeded.
func (w *wal) append(payload []byte) (start int64, err error) {
	if w.failed != nil {
		return 0, fmt.Errorf("segment: wal unusable after truncate failure: %w", w.failed)
	}
	var hdr [walHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	start = w.off
	if ferr := faultinject.Fire(faultinject.PointWAL); ferr != nil {
		torn := make([]byte, 0, walHeaderSize+len(payload)/2)
		torn = append(torn, hdr[:]...)
		torn = append(torn, payload[:len(payload)/2]...)
		w.f.WriteAt(torn, start)
		w.f.Sync()
		return start, fmt.Errorf("segment: wal append: %w", ferr)
	}
	rec := make([]byte, 0, walHeaderSize+len(payload))
	rec = append(rec, hdr[:]...)
	rec = append(rec, payload...)
	if _, err := w.f.WriteAt(rec, start); err != nil {
		return start, fmt.Errorf("segment: wal write: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return start, fmt.Errorf("segment: wal sync: %w", err)
	}
	w.off = start + int64(len(rec))
	return start, nil
}

// truncate cuts the log back to off bytes — the un-ack path (a batch
// whose fold failed must not be replayed) and the seal path (sealed
// batches leave the log). Any failure poisons the log: the file may or
// may not have been cut (a sync failure after a successful Truncate
// leaves the cut applied but unsynced), so the safe extent is unknown
// and further appends are refused. The faultinject point
// PointWALTruncate lets tests exercise exactly this path.
func (w *wal) truncate(off int64) error {
	if ferr := faultinject.Fire(faultinject.PointWALTruncate); ferr != nil {
		err := fmt.Errorf("segment: wal truncate: %w", ferr)
		w.failed = err
		return err
	}
	if err := w.f.Truncate(off); err != nil {
		err = fmt.Errorf("segment: wal truncate: %w", err)
		w.failed = err
		return err
	}
	if err := w.f.Sync(); err != nil {
		err = fmt.Errorf("segment: wal sync: %w", err)
		w.failed = err
		return err
	}
	w.off = off
	return nil
}

// replay feeds every intact record's payload to fn in order, truncates
// any torn tail, and leaves the log positioned for appending. A fn
// error is fatal (storage state is ambiguous); a torn tail is not (it
// is the defined crash shape).
func (w *wal) replay(fn func(payload []byte) error) error {
	data, err := os.ReadFile(w.path)
	if err != nil {
		return fmt.Errorf("segment: wal read: %w", err)
	}
	good := 0
	for {
		if len(data)-good < walHeaderSize {
			break
		}
		n := int(binary.LittleEndian.Uint32(data[good:]))
		want := binary.LittleEndian.Uint32(data[good+4:])
		if n < walPayloadMin || good+walHeaderSize+n > len(data) {
			break // torn or nonsense length: tail ends here
		}
		payload := data[good+walHeaderSize : good+walHeaderSize+n]
		if crc32.ChecksumIEEE(payload) != want {
			break // torn write or corruption: tail ends here
		}
		if err := fn(payload); err != nil {
			return err
		}
		good += walHeaderSize + n
	}
	if good < len(data) {
		return w.truncate(int64(good))
	}
	w.off = int64(good)
	return nil
}

// walPayloadMin is the smallest well-formed payload: u64 seq + u32 nrows.
const walPayloadMin = 12

// encodeBatch serialises one validated batch into a WAL payload.
func encodeBatch(seq uint64, schema table.Schema, batch []table.Row) []byte {
	out := make([]byte, walPayloadMin, walPayloadMin+len(batch)*len(schema)*8)
	binary.LittleEndian.PutUint64(out[0:8], seq)
	binary.LittleEndian.PutUint32(out[8:12], uint32(len(batch)))
	for ci, def := range schema {
		switch def.Type {
		case column.Float64:
			for _, r := range batch {
				out = binary.LittleEndian.AppendUint64(out, math.Float64bits(r[ci].(float64)))
			}
		case column.Int64:
			for _, r := range batch {
				out = binary.LittleEndian.AppendUint64(out, uint64(r[ci].(int64)))
			}
		case column.Bool:
			for _, r := range batch {
				b := byte(0)
				if r[ci].(bool) {
					b = 1
				}
				out = append(out, b)
			}
		case column.String:
			for _, r := range batch {
				s := r[ci].(string)
				out = binary.LittleEndian.AppendUint32(out, uint32(len(s)))
				out = append(out, s...)
			}
		}
	}
	return out
}

// decodeBatch is the inverse of encodeBatch: payload → rows, for replay
// through the same fold path a live Load takes.
func decodeBatch(schema table.Schema, payload []byte) (seq uint64, batch []table.Row, err error) {
	if len(payload) < walPayloadMin {
		return 0, nil, fmt.Errorf("segment: wal payload too short (%d bytes)", len(payload))
	}
	seq = binary.LittleEndian.Uint64(payload[0:8])
	n := int(binary.LittleEndian.Uint32(payload[8:12]))
	p := payload[walPayloadMin:]
	batch = make([]table.Row, n)
	for i := range batch {
		batch[i] = make(table.Row, len(schema))
	}
	for ci, def := range schema {
		switch def.Type {
		case column.Float64:
			if len(p) < 8*n {
				return 0, nil, errWALShort(def.Name)
			}
			for i := 0; i < n; i++ {
				batch[i][ci] = math.Float64frombits(binary.LittleEndian.Uint64(p[i*8:]))
			}
			p = p[8*n:]
		case column.Int64:
			if len(p) < 8*n {
				return 0, nil, errWALShort(def.Name)
			}
			for i := 0; i < n; i++ {
				batch[i][ci] = int64(binary.LittleEndian.Uint64(p[i*8:]))
			}
			p = p[8*n:]
		case column.Bool:
			if len(p) < n {
				return 0, nil, errWALShort(def.Name)
			}
			for i := 0; i < n; i++ {
				batch[i][ci] = p[i] != 0
			}
			p = p[n:]
		case column.String:
			for i := 0; i < n; i++ {
				if len(p) < 4 {
					return 0, nil, errWALShort(def.Name)
				}
				l := int(binary.LittleEndian.Uint32(p))
				p = p[4:]
				if len(p) < l {
					return 0, nil, errWALShort(def.Name)
				}
				batch[i][ci] = string(p[:l])
				p = p[l:]
			}
		}
	}
	return seq, batch, nil
}

func errWALShort(col string) error {
	return fmt.Errorf("segment: wal payload truncated in column %q", col)
}
