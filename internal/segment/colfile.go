// Package segment is the durable storage layer under internal/table:
// per-column data files in the MonetDB BAT tradition the paper builds
// on (one file per column, raw little-endian values, dictionary pages
// for VARCHAR), a write-ahead log that makes Loader batches durable
// before they are acknowledged, a manifest that seals the durable
// prefix with its zone maps, and a byte-budgeted granule-residency
// cache so a table can be larger than RAM.
//
// The central design constraint is the engine: every scan kernel reads
// whole contiguous Data slices ([]float64, []int64, ...). Segment
// storage therefore maps each column's single data file read-only
// (MAP_SHARED) and hands the table unsafe-cast slice views into the
// mapping — the engine is unchanged, the OS pages granules in on
// demand, and eviction is madvise(MADV_DONTNEED) on cold granule
// ranges. Platforms without mmap fall back to heap-resident storage
// (still durable, not larger-than-RAM).
package segment

import (
	"errors"
	"fmt"
	"io"
	"os"
	"unsafe"
)

// colFile is one column's backing file: a sparse file sized to a row
// capacity, written with pwrite (never through the mapping) and read
// through a whole-file read-only mapping. Capacity growth doubles the
// file and remaps; superseded mappings are retired, not unmapped, so
// snapshot slices taken before the growth stay valid until Close.
type colFile struct {
	path string
	f    *os.File
	elem int64 // bytes per row: 8 (f64/i64), 4 (varchar codes), 1 (bool)

	mapped  []byte   // current mapping (nil in heap mode)
	retired [][]byte // superseded mappings, unmapped only at Close
	heap    []byte   // heap-mode storage mirror
	capRows int64
}

// minCapRows is the smallest file capacity, in rows. Files are sparse,
// so over-reserving costs address space (cheap) not disk.
const minCapRows = 64 * 1024

// openColFile opens (creating if absent) the column file at path and
// ensures capacity for at least needRows rows.
func openColFile(path string, elem int64, needRows int, noMmap bool) (*colFile, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	c := &colFile{path: path, f: f, elem: elem}
	capRows := int64(minCapRows)
	for capRows < int64(needRows) {
		capRows *= 2
	}
	if err := c.setCap(capRows, noMmap || !mmapSupported); err != nil {
		f.Close()
		return nil, err
	}
	return c, nil
}

// setCap grows the file to capRows rows and (re)maps it. The previous
// mapping, if any, is retired.
func (c *colFile) setCap(capRows int64, heapMode bool) error {
	if err := c.f.Truncate(capRows * c.elem); err != nil {
		return fmt.Errorf("segment: grow %s: %w", c.path, err)
	}
	if heapMode {
		grown := make([]byte, capRows*c.elem)
		if c.heap == nil {
			// First open in heap mode: load whatever the file holds. The
			// file was just truncated to exactly len(grown), so the read
			// fills fully; io.EOF at the boundary is not an error.
			if _, err := c.f.ReadAt(grown, 0); err != nil && !errors.Is(err, io.EOF) {
				return fmt.Errorf("segment: read %s: %w", c.path, err)
			}
		} else {
			copy(grown, c.heap)
		}
		c.heap = grown
		c.capRows = capRows
		return nil
	}
	m, err := mmapFile(int(c.f.Fd()), capRows*c.elem)
	if err != nil {
		return fmt.Errorf("segment: mmap %s: %w", c.path, err)
	}
	if c.mapped != nil {
		c.retired = append(c.retired, c.mapped)
	}
	c.mapped = m
	c.capRows = capRows
	return nil
}

// ensure grows capacity to hold rows rows (doubling); a no-op when it
// already fits.
func (c *colFile) ensure(rows int) error {
	if int64(rows) <= c.capRows {
		return nil
	}
	capRows := c.capRows
	for capRows < int64(rows) {
		capRows *= 2
	}
	return c.setCap(capRows, c.mapped == nil)
}

// write stores b at byte offset off: always to the file (durability),
// and into the heap mirror when not mapped (visibility).
func (c *colFile) write(off int64, b []byte) error {
	if _, err := c.f.WriteAt(b, off); err != nil {
		return fmt.Errorf("segment: write %s: %w", c.path, err)
	}
	if c.mapped == nil {
		copy(c.heap[off:], b)
	}
	return nil
}

// bytes returns the full-capacity byte view of the column storage.
func (c *colFile) bytes() []byte {
	if c.mapped != nil {
		return c.mapped
	}
	return c.heap
}

// sync flushes the file to stable storage.
func (c *colFile) sync() error { return c.f.Sync() }

// evict drops the residency of byte range [lo, hi) (page-aligned
// inward); a no-op in heap mode. Returns the bytes advised out.
func (c *colFile) evict(lo, hi int64) int64 {
	if c.mapped == nil {
		return 0
	}
	lo = (lo + pageSize - 1) / pageSize * pageSize
	hi = hi / pageSize * pageSize
	if hi <= lo {
		return 0
	}
	if err := madviseDontNeed(c.mapped[lo:hi]); err != nil {
		return 0
	}
	return hi - lo
}

// close unmaps every mapping (current and retired) and closes the file.
// Slices handed out over the mappings are invalid afterwards.
func (c *colFile) close() error {
	var first error
	for _, m := range append(c.retired, c.mapped) {
		if m != nil {
			if err := munmapFile(m); err != nil && first == nil {
				first = err
			}
		}
	}
	c.mapped, c.retired = nil, nil
	if err := c.f.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

// Typed views over a column file's bytes. The mapping is page-aligned,
// so the casts are aligned for every element size; n is in rows.

func f64View(b []byte, n int) []float64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8)[:n:n]
}

func i64View(b []byte, n int) []int64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), len(b)/8)[:n:n]
}

func i32View(b []byte, n int) []int32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)[:n:n]
}

// checkBoolBytes verifies that the first n bytes hold only 0x00/0x01
// before they are handed to boolView. Run on every open of a sealed
// prefix — even without VerifyOnOpen — because a stray byte is not
// merely wrong data: reinterpreting it as a Go bool is undefined
// behavior.
func checkBoolBytes(b []byte, n int) error {
	for i := 0; i < n; i++ {
		if b[i] > 1 {
			return fmt.Errorf("bool byte at row %d is 0x%02x, want 0x00/0x01", i, b[i])
		}
	}
	return nil
}

// boolView reinterprets one byte per row as bool. The writer only emits
// 0x00/0x01, and recovery runs checkBoolBytes over the sealed prefix
// before installing a view, so no other byte value can reach a Go bool.
func boolView(b []byte, n int) []bool {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*bool)(unsafe.Pointer(&b[0])), len(b))[:n:n]
}
