package segment

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"sciborq/internal/column"
	"sciborq/internal/table"
)

// The manifest is the durable footer of the table's sealed prefix: it
// records the schema, the sealed row count, the per-column zone-map
// granule arrays at that prefix (so reopening never rescans data), the
// sealed dictionary word counts for VARCHAR columns, and one entry per
// sealed segment with per-column CRC32s for VerifyOnOpen. It is
// rewritten atomically at each seal (tmp + fsync + rename + dir sync):
// a crash mid-seal leaves the previous manifest, and the WAL — only
// truncated after the manifest rename — still carries the batches the
// old manifest does not cover. A crash on the other side of the rename
// (manifest landed, WAL not yet truncated) is covered by SealedSeq:
// replay skips the records the new manifest already folded.
const (
	manifestName    = "MANIFEST.json"
	manifestVersion = 1
)

type manifest struct {
	Version    int    `json:"version"`
	Table      string `json:"table"`
	SealedRows int    `json:"sealed_rows"`
	// SealedSeq is the WAL sequence number of the last batch the sealed
	// prefix covers (sequence numbers are monotonic per store lifetime,
	// never reset). Replay skips records at or below this watermark:
	// they are batches a seal already folded into the manifest's rows,
	// left in the log by a crash — or a truncate failure — between the
	// manifest rename and the WAL truncate. Without the watermark those
	// records would fold a second time on recovery.
	SealedSeq uint64       `json:"sealed_seq"`
	Columns   []manCol     `json:"columns"`
	Segments  []manSegment `json:"segments"`
}

type manCol struct {
	Name string `json:"name"`
	Type string `json:"type"`
	// Zmin/Zmax are the zone-map granule arrays over the sealed prefix,
	// base64 of raw little-endian IEEE 754 float64 — raw bits rather
	// than JSON numbers so NaN survives and reopen is bit-identical.
	Zmin string `json:"zmin,omitempty"`
	Zmax string `json:"zmax,omitempty"`
	// DictWords counts the sealed dictionary words (VARCHAR only); the
	// dict file may hold exactly this many complete entries.
	DictWords int `json:"dict_words,omitempty"`
}

type manSegment struct {
	StartRow int `json:"start_row"`
	Rows     int `json:"rows"`
	// CRC maps column name → IEEE CRC32 of that column's raw bytes over
	// the segment's row range.
	CRC map[string]uint32 `json:"crc"`
}

func encodeF64s(v []float64) string {
	buf := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(x))
	}
	return base64.StdEncoding.EncodeToString(buf)
}

func decodeF64s(s string) ([]float64, error) {
	buf, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, err
	}
	if len(buf)%8 != 0 {
		return nil, fmt.Errorf("segment: zone array length %d not a multiple of 8", len(buf))
	}
	out := make([]float64, len(buf)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return out, nil
}

// readManifest loads the manifest from dir; found is false when none
// exists (a fresh data directory).
func readManifest(dir string) (m *manifest, found bool, err error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	m = &manifest{}
	if err := json.Unmarshal(data, m); err != nil {
		return nil, false, fmt.Errorf("segment: corrupt manifest in %s: %w", dir, err)
	}
	if m.Version != manifestVersion {
		return nil, false, fmt.Errorf("segment: manifest version %d, want %d", m.Version, manifestVersion)
	}
	return m, true, nil
}

// writeManifest atomically replaces dir's manifest: write to a temp
// file, fsync it, rename over the real name, fsync the directory. A
// crash at any point leaves either the old or the new manifest, never a
// torn one.
func writeManifest(dir string, m *manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// checkSchema verifies the manifest's column list matches the attached
// table's schema exactly — name, order, and type. A mismatch means the
// directory belongs to a different table shape; refusing is the only
// safe answer.
func checkSchema(m *manifest, schema table.Schema) error {
	if len(m.Columns) != len(schema) {
		return fmt.Errorf("segment: manifest has %d columns, table has %d", len(m.Columns), len(schema))
	}
	for i, mc := range m.Columns {
		if mc.Name != schema[i].Name || mc.Type != schema[i].Type.String() {
			return fmt.Errorf("segment: manifest column %d is %s %s, table wants %s %s",
				i, mc.Name, mc.Type, schema[i].Name, schema[i].Type)
		}
	}
	return nil
}

// elemSize returns the on-disk bytes per row for a column type.
func elemSize(t column.Type) int64 {
	switch t {
	case column.Float64, column.Int64:
		return 8
	case column.String:
		return 4 // int32 dictionary codes; words live in the dict file
	case column.Bool:
		return 1
	}
	panic(fmt.Sprintf("segment: unknown column type %d", t))
}
