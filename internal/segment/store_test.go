package segment

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sciborq/internal/column"
	"sciborq/internal/faultinject"
	"sciborq/internal/table"
)

func testSchema() table.Schema {
	return table.Schema{
		{Name: "x", Type: column.Float64},
		{Name: "k", Type: column.Int64},
		{Name: "tag", Type: column.String},
		{Name: "ok", Type: column.Bool},
	}
}

// genBatch builds a deterministic batch: clustered x so zone maps carry
// real structure, occasional NaN so bit-identity is exercised where
// == comparison would lie.
func genBatch(rng *rand.Rand, n int) []table.Row {
	rows := make([]table.Row, n)
	base := rng.Float64() * 1000
	for i := range rows {
		x := base + rng.Float64()*10
		if rng.Intn(97) == 0 {
			x = math.NaN()
		}
		rows[i] = table.Row{
			x,
			int64(rng.Intn(1 << 30)),
			fmt.Sprintf("tag-%d", rng.Intn(7)),
			rng.Intn(2) == 0,
		}
	}
	return rows
}

// assertTablesEqual compares every cell of b against a bit-identically,
// including zone-map bounds over every granule window.
func assertTablesEqual(t *testing.T, a, b *table.Table) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("row count %d != %d", b.Len(), a.Len())
	}
	n := a.Len()
	for _, def := range a.Schema() {
		ca, cb := a.MustCol(def.Name), b.MustCol(def.Name)
		switch va := ca.(type) {
		case *column.Float64Col:
			vb := cb.(*column.Float64Col)
			for i := 0; i < n; i++ {
				if math.Float64bits(va.Data[i]) != math.Float64bits(vb.Data[i]) {
					t.Fatalf("col %q row %d: %v != %v (bits)", def.Name, i, vb.Data[i], va.Data[i])
				}
			}
			assertZonesEqual(t, def.Name, n, va, vb)
		case *column.Int64Col:
			vb := cb.(*column.Int64Col)
			for i := 0; i < n; i++ {
				if va.Data[i] != vb.Data[i] {
					t.Fatalf("col %q row %d: %d != %d", def.Name, i, vb.Data[i], va.Data[i])
				}
			}
			assertZonesEqual(t, def.Name, n, va, vb)
		case *column.StringCol:
			vb := cb.(*column.StringCol)
			for i := 0; i < n; i++ {
				if va.Value(int32(i)) != vb.Value(int32(i)) {
					t.Fatalf("col %q row %d: %q != %q", def.Name, i, vb.Value(int32(i)), va.Value(int32(i)))
				}
			}
		case *column.BoolCol:
			vb := cb.(*column.BoolCol)
			for i := 0; i < n; i++ {
				if va.Data[i] != vb.Data[i] {
					t.Fatalf("col %q row %d: %t != %t", def.Name, i, vb.Data[i], va.Data[i])
				}
			}
		}
	}
}

type zoned interface {
	ZoneBounds(lo, hi int) (mn, mx float64, ok bool)
}

func assertZonesEqual(t *testing.T, name string, n int, a, b zoned) {
	t.Helper()
	for lo := 0; lo < n; lo += granuleRows {
		hi := lo + granuleRows
		if hi > n {
			hi = n
		}
		amn, amx, aok := a.ZoneBounds(lo, hi)
		bmn, bmx, bok := b.ZoneBounds(lo, hi)
		if aok != bok ||
			math.Float64bits(amn) != math.Float64bits(bmn) ||
			math.Float64bits(amx) != math.Float64bits(bmx) {
			t.Fatalf("col %q zones [%d,%d): got (%v,%v,%t), want (%v,%v,%t)",
				name, lo, hi, bmn, bmx, bok, amn, amx, aok)
		}
	}
}

// loadRef mirrors batches into a plain in-memory reference table.
func loadRef(t *testing.T, ref *table.Table, batches [][]table.Row) {
	t.Helper()
	for _, b := range batches {
		if err := ref.AppendBatch(b); err != nil {
			t.Fatal(err)
		}
	}
}

func openStore(t *testing.T, dir string, opts Options) (*table.Table, *Store) {
	t.Helper()
	tb := table.MustNew("t", testSchema())
	opts.Dir = dir
	opts.VerifyOnOpen = true
	st, err := Open(tb, opts)
	if err != nil {
		t.Fatal(err)
	}
	return tb, st
}

func TestRoundTripAndRecovery(t *testing.T) {
	for _, noMmap := range []bool{false, true} {
		t.Run(fmt.Sprintf("noMmap=%t", noMmap), func(t *testing.T) {
			dir := t.TempDir()
			rng := rand.New(rand.NewSource(42))
			var batches [][]table.Row
			for i := 0; i < 9; i++ {
				batches = append(batches, genBatch(rng, 700+rng.Intn(600)))
			}

			// SealRows 2048 forces several seals mid-run; the last rows
			// stay in the WAL tail.
			tb, st := openStore(t, dir, Options{SealRows: 2048, NoMmap: noMmap})
			for _, b := range batches {
				if err := st.LoadBatch(b); err != nil {
					t.Fatal(err)
				}
			}
			ref := table.MustNew("ref", testSchema())
			loadRef(t, ref, batches)
			assertTablesEqual(t, ref, tb)
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}

			// Clean reopen: sealed segments + empty WAL.
			tb2, st2 := openStore(t, dir, Options{SealRows: 2048, NoMmap: noMmap})
			if !st2.Recovered() {
				t.Fatal("second open not recovered")
			}
			assertTablesEqual(t, ref, tb2)

			// And the recovered store keeps loading.
			extra := genBatch(rng, 500)
			if err := st2.LoadBatch(extra); err != nil {
				t.Fatal(err)
			}
			loadRef(t, ref, [][]table.Row{extra})
			assertTablesEqual(t, ref, tb2)
			if err := st2.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRecoveryWithoutClose(t *testing.T) {
	// Abandoning the store without Close (= crash after the last ack)
	// must lose nothing: every batch was WAL-synced before its ack.
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(7))
	var batches [][]table.Row
	for i := 0; i < 5; i++ {
		batches = append(batches, genBatch(rng, 900))
	}
	_, st := openStore(t, dir, Options{SealRows: 1 << 20})
	for _, b := range batches {
		if err := st.LoadBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	// No Close: the manifest still says sealedRows=0; recovery must come
	// entirely from WAL replay.
	tb2, st2 := openStore(t, dir, Options{})
	defer st2.Close()
	ref := table.MustNew("ref", testSchema())
	loadRef(t, ref, batches)
	assertTablesEqual(t, ref, tb2)
	if got := st2.Stats().ReplayedBatches; got != 5 {
		t.Fatalf("replayed %d batches, want 5", got)
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(11))
	batches := [][]table.Row{genBatch(rng, 400), genBatch(rng, 400)}
	_, st := openStore(t, dir, Options{SealRows: 1 << 20})
	for _, b := range batches {
		if err := st.LoadBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a crash mid-append: garbage half-record at the WAL tail.
	walPath := filepath.Join(dir, "wal.log")
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x40, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	tb2, st2 := openStore(t, dir, Options{})
	defer st2.Close()
	ref := table.MustNew("ref", testSchema())
	loadRef(t, ref, batches)
	assertTablesEqual(t, ref, tb2)

	// The torn tail is gone from disk, not just ignored.
	fi, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Stats().WALBytes != fi.Size() {
		t.Fatalf("wal not truncated: file %d bytes, store expects %d", fi.Size(), st2.Stats().WALBytes)
	}
}

// TestCrashRecoveryProperty is the seeded crash property test: inject a
// WAL fault (which writes a torn prefix — on-disk state identical to a
// kill mid-write) at a seeded batch offset, reopen, and require the
// recovered table to equal the acknowledged-batch prefix bit-identically
// — values and zone maps both.
func TestCrashRecoveryProperty(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			crashAt := 1 + rng.Intn(6) // batch ordinal that dies
			faultinject.Enable(faultinject.NewPlan(faultinject.Fault{
				Point: faultinject.PointWAL,
				Hit:   int64(crashAt),
				Kind:  faultinject.KindError,
			}))
			defer faultinject.Disable()

			_, st := openStore(t, dir, Options{SealRows: 1500})
			var acked [][]table.Row
			for i := 0; i < 7; i++ {
				b := genBatch(rng, 300+rng.Intn(500))
				if err := st.LoadBatch(b); err != nil {
					break // the crash; nothing after it is acknowledged
				}
				acked = append(acked, b)
			}
			if len(acked) != crashAt-1 {
				t.Fatalf("acked %d batches, want %d", len(acked), crashAt-1)
			}
			faultinject.Disable()

			// Reopen over the dead store's directory (no Close — crashed).
			tb2, st2 := openStore(t, dir, Options{})
			defer st2.Close()
			ref := table.MustNew("ref", testSchema())
			loadRef(t, ref, acked)
			assertTablesEqual(t, ref, tb2)
		})
	}
}

func TestFoldFailureUnacks(t *testing.T) {
	// A batch that fails AFTER its WAL write must be truncated back out,
	// or recovery would resurrect a batch the caller saw fail. Trigger
	// via a fold-level failure: close the column files' descriptors so
	// the pwrite fails, then check recovery sees only the good batch.
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(3))
	good := genBatch(rng, 200)
	_, st := openStore(t, dir, Options{SealRows: 1 << 20})
	if err := st.LoadBatch(good); err != nil {
		t.Fatal(err)
	}
	walLen := st.Stats().WALBytes
	for _, f := range st.files {
		f.f.Close() // sabotage: every file write now fails
	}
	if err := st.LoadBatch(genBatch(rng, 200)); err == nil {
		t.Fatal("LoadBatch succeeded over closed files")
	}
	if got := st.wal.off; got != walLen {
		t.Fatalf("wal not truncated after fold failure: %d, want %d", got, walLen)
	}
}

// TestSealCrashWindowNoDuplicates reproduces a crash between the
// manifest rename and the WAL truncate: the new manifest covers rows
// whose records still sit in the log. Replay must skip them via the
// sealed-sequence watermark — folding them again would duplicate every
// sealed batch.
func TestSealCrashWindowNoDuplicates(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(17))
	batches := [][]table.Row{genBatch(rng, 400), genBatch(rng, 400), genBatch(rng, 400)}
	_, st := openStore(t, dir, Options{SealRows: 1 << 20})
	for _, b := range batches {
		if err := st.LoadBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	walPath := filepath.Join(dir, "wal.log")
	preSeal, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Seal(); err != nil {
		t.Fatal(err)
	}
	st.closeFiles() // crash-style teardown: no Close, no final seal
	// Restore the pre-seal log: on disk this is exactly the state a
	// crash after the manifest rename but before the truncate leaves.
	if err := os.WriteFile(walPath, preSeal, 0o644); err != nil {
		t.Fatal(err)
	}

	tb2, st2 := openStore(t, dir, Options{})
	defer st2.Close()
	ref := table.MustNew("ref", testSchema())
	loadRef(t, ref, batches)
	assertTablesEqual(t, ref, tb2)
	if got := st2.Stats().ReplayedBatches; got != 0 {
		t.Fatalf("replayed %d batches, want 0 (all at or below the sealed watermark)", got)
	}
}

// TestSealTruncateFailureSafe injects a failure into the seal's WAL
// truncate: the manifest has already landed, so the rows stay durable
// and the reopen must not double-fold — but the poisoned log must
// refuse every further load, since its safe extent is ambiguous.
func TestSealTruncateFailureSafe(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(19))
	batches := [][]table.Row{genBatch(rng, 300), genBatch(rng, 300)}
	_, st := openStore(t, dir, Options{SealRows: 1 << 20})
	for _, b := range batches {
		if err := st.LoadBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	faultinject.Enable(faultinject.NewPlan(faultinject.Fault{
		Point: faultinject.PointWALTruncate,
		Hit:   1,
		Kind:  faultinject.KindError,
	}))
	if err := st.Seal(); err == nil {
		faultinject.Disable()
		t.Fatal("seal succeeded despite injected truncate failure")
	}
	faultinject.Disable()
	if err := st.LoadBatch(genBatch(rng, 100)); err == nil {
		t.Fatal("LoadBatch accepted on a poisoned WAL")
	}
	if st.Stats().WALError == "" {
		t.Fatal("poisoned WAL not surfaced in stats")
	}
	st.closeFiles()

	// The sealed manifest plus the stale log must reproduce exactly the
	// acknowledged batches — records at or below the watermark skip.
	tb2, st2 := openStore(t, dir, Options{})
	defer st2.Close()
	ref := table.MustNew("ref", testSchema())
	loadRef(t, ref, batches)
	assertTablesEqual(t, ref, tb2)
	if got := st2.Stats().ReplayedBatches; got != 0 {
		t.Fatalf("replayed %d batches, want 0", got)
	}
	// And the recovered store loads normally again.
	extra := genBatch(rng, 200)
	if err := st2.LoadBatch(extra); err != nil {
		t.Fatal(err)
	}
	loadRef(t, ref, [][]table.Row{extra})
	assertTablesEqual(t, ref, tb2)
}

// TestUnackTruncateFailurePoisons covers the fold-failure un-ack path
// when the truncate itself fails: the rejected record stays in the log,
// so the store must stop accepting batches (a later append would land
// behind a record the caller was told failed) and say why.
func TestUnackTruncateFailurePoisons(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(23))
	_, st := openStore(t, dir, Options{SealRows: 1 << 20})
	if err := st.LoadBatch(genBatch(rng, 200)); err != nil {
		t.Fatal(err)
	}
	for _, f := range st.files {
		f.f.Close() // sabotage: the fold's pwrite fails
	}
	faultinject.Enable(faultinject.NewPlan(faultinject.Fault{
		Point: faultinject.PointWALTruncate,
		Hit:   1,
		Kind:  faultinject.KindError,
	}))
	err := st.LoadBatch(genBatch(rng, 200))
	faultinject.Disable()
	if err == nil {
		t.Fatal("LoadBatch succeeded over closed files")
	}
	if !strings.Contains(err.Error(), "un-ack failed") {
		t.Fatalf("error does not surface the failed un-ack: %v", err)
	}
	if err := st.LoadBatch(genBatch(rng, 100)); err == nil {
		t.Fatal("LoadBatch accepted on a poisoned WAL")
	}
	if st.Stats().WALError == "" {
		t.Fatal("poisoned WAL not surfaced in stats")
	}
}

// TestWALSequenceGapRefused removes a record from the middle of an
// intact log: replay must refuse the open (records lost from an intact
// prefix are corruption, not a crash shape).
func TestWALSequenceGapRefused(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(29))
	_, st := openStore(t, dir, Options{SealRows: 1 << 20})
	for i := 0; i < 3; i++ {
		if err := st.LoadBatch(genBatch(rng, 200)); err != nil {
			t.Fatal(err)
		}
	}
	st.closeFiles()
	walPath := filepath.Join(dir, "wal.log")
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Splice out the middle record. Each record is 8 bytes of header
	// (u32 len | u32 crc) followed by len payload bytes.
	size0 := walHeaderSize + int(binary.LittleEndian.Uint32(data))
	size1 := walHeaderSize + int(binary.LittleEndian.Uint32(data[size0:]))
	spliced := append(append([]byte{}, data[:size0]...), data[size0+size1:]...)
	if err := os.WriteFile(walPath, spliced, 0o644); err != nil {
		t.Fatal(err)
	}
	tb := table.MustNew("t", testSchema())
	if _, err := Open(tb, Options{Dir: dir}); err == nil || !strings.Contains(err.Error(), "sequence gap") {
		t.Fatalf("open over a WAL with a missing record: err = %v, want sequence gap", err)
	}
}

// TestBoolCorruptionRefused flips a sealed bool byte to a non-0/1 value
// and reopens WITHOUT VerifyOnOpen: the cheap per-open bool validation
// must still catch it, because reinterpreting such a byte as a Go bool
// is undefined behavior, not merely wrong data.
func TestBoolCorruptionRefused(t *testing.T) {
	dir := t.TempDir()
	_, st := openStore(t, dir, Options{SealRows: 100})
	rng := rand.New(rand.NewSource(31))
	if err := st.LoadBatch(genBatch(rng, 400)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, "ok.col"), os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0x02}, 17); err != nil {
		t.Fatal(err)
	}
	f.Close()
	tb := table.MustNew("t", testSchema())
	if _, err := Open(tb, Options{Dir: dir}); err == nil || !strings.Contains(err.Error(), "bool byte") {
		t.Fatalf("open over a corrupt bool column: err = %v, want bool byte error", err)
	}
}

// TestCacheClosedStoreNotReadmitted drives the touch/Close race path
// directly: once a store is closed (closed set before forget sweeps),
// a racing touch must not re-admit its granules.
func TestCacheClosedStoreNotReadmitted(t *testing.T) {
	dir := t.TempDir()
	cache := NewCache(0)
	tb, st := openStore(t, dir, Options{SealRows: 1 << 30, Cache: cache})
	rng := rand.New(rand.NewSource(37))
	if err := st.LoadBatch(genBatch(rng, 300)); err != nil {
		t.Fatal(err)
	}
	tb.TouchRange(0, 300)
	if cache.Stats().Granules == 0 {
		t.Fatal("touch admitted nothing")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if got := cache.Stats().Granules; got != 0 {
		t.Fatalf("%d granules survive forget", got)
	}
	cache.touch(st, 0, 0) // the racing touch, after closed is set
	if got := cache.Stats().Granules; got != 0 {
		t.Fatalf("closed store re-admitted %d granules", got)
	}
	if got := cache.Stats().ResidentBytes; got != 0 {
		t.Fatalf("closed store counts %d resident bytes", got)
	}
}

func TestDurableTableRejectsDirectAppends(t *testing.T) {
	dir := t.TempDir()
	tb, st := openStore(t, dir, Options{})
	defer st.Close()
	if err := tb.AppendRow(table.Row{1.0, int64(1), "a", true}); err == nil {
		t.Fatal("direct AppendRow on a durable table succeeded")
	}
	if err := tb.AppendBatch([]table.Row{{1.0, int64(1), "a", true}}); err == nil {
		t.Fatal("direct AppendBatch on a durable table succeeded")
	}
}

func TestImportExistingRows(t *testing.T) {
	// Fresh directory + prefilled table = the paper's "extracted from an
	// existing database" mode: rows import as the initial sealed segment
	// and survive reopen against an empty table.
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(5))
	pre := genBatch(rng, 1200)
	tb := table.MustNew("t", testSchema())
	if err := tb.AppendBatch(pre); err != nil {
		t.Fatal(err)
	}
	st, err := Open(tb, Options{Dir: dir, VerifyOnOpen: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.Recovered() {
		t.Fatal("fresh directory reported recovered")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	tb2, st2 := openStore(t, dir, Options{})
	defer st2.Close()
	ref := table.MustNew("ref", testSchema())
	loadRef(t, ref, [][]table.Row{pre})
	assertTablesEqual(t, ref, tb2)
}

func TestMissingColumnFileRefused(t *testing.T) {
	dir := t.TempDir()
	_, st := openStore(t, dir, Options{SealRows: 100})
	rng := rand.New(rand.NewSource(9))
	if err := st.LoadBatch(genBatch(rng, 400)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "k.col")); err != nil {
		t.Fatal(err)
	}
	tb := table.MustNew("t", testSchema())
	if _, err := Open(tb, Options{Dir: dir}); err == nil {
		t.Fatal("open with a missing column file succeeded")
	}
}

func TestChecksumMismatchRefused(t *testing.T) {
	dir := t.TempDir()
	_, st := openStore(t, dir, Options{SealRows: 100})
	rng := rand.New(rand.NewSource(13))
	if err := st.LoadBatch(genBatch(rng, 400)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the sealed segment.
	path := filepath.Join(dir, "x.col")
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xff}, 100); err != nil {
		t.Fatal(err)
	}
	f.Close()
	tb := table.MustNew("t", testSchema())
	if _, err := Open(tb, Options{Dir: dir, VerifyOnOpen: true}); err == nil {
		t.Fatal("open with a corrupt sealed segment passed VerifyOnOpen")
	}
}

func TestGranuleCacheEvicts(t *testing.T) {
	dir := t.TempDir()
	// Budget of one granule's f64 column: touching several granules must
	// evict.
	cache := NewCache(8 * granuleRows)
	tb, st := openStore(t, dir, Options{SealRows: 1 << 30, Cache: cache})
	defer st.Close()
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 3; i++ {
		batch := make([]table.Row, granuleRows)
		for j := range batch {
			batch[j] = table.Row{rng.Float64(), int64(j), "w", true}
		}
		if err := st.LoadBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	n := tb.Len()
	for g := 0; g*granuleRows < n; g++ {
		tb.TouchRange(g*granuleRows, min((g+1)*granuleRows, n))
	}
	stats := cache.Stats()
	if stats.Faults == 0 {
		t.Fatal("no granule faults recorded")
	}
	if stats.Evictions == 0 {
		t.Fatalf("no evictions under a %d-byte budget (resident %d)", 8*granuleRows, stats.ResidentBytes)
	}
	if stats.ResidentBytes > 8*granuleRows {
		t.Fatalf("resident %d exceeds budget %d after eviction", stats.ResidentBytes, 8*granuleRows)
	}
	// Evicted granules still read correctly (refault from file).
	x, err := tb.Float64("x")
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range x {
		sum += v
	}
	if math.IsNaN(sum) {
		t.Fatal("NaN after eviction refault")
	}
}

func TestEmptyBatchAndValidation(t *testing.T) {
	dir := t.TempDir()
	tb, st := openStore(t, dir, Options{})
	defer st.Close()
	if err := st.LoadBatch(nil); err != nil {
		t.Fatal(err)
	}
	if err := st.LoadBatch([]table.Row{{1.0, "wrong", "a", true}}); err == nil {
		t.Fatal("type-mismatched batch accepted")
	}
	if tb.Len() != 0 {
		t.Fatalf("failed batches left %d rows", tb.Len())
	}
	if st.Stats().WALBytes != 0 {
		t.Fatal("failed batch left WAL bytes")
	}
}
