//go:build linux

package segment

import "syscall"

// mmapSupported gates the mapped storage path; on platforms without it
// colFile falls back to heap-resident storage (still durable — writes
// always go to the file — just not larger-than-RAM).
const mmapSupported = true

// mmapFile maps length bytes of fd read-only and shared: reads see
// pwrite(2) traffic to the same file immediately (one page cache), and
// the mapping itself is never written through, so storage corruption
// from a stray engine write is impossible at the MMU level.
func mmapFile(fd int, length int64) ([]byte, error) {
	return syscall.Mmap(fd, 0, int(length), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmapFile(b []byte) error { return syscall.Munmap(b) }

// madviseDontNeed releases the page-table entries for b, dropping the
// granule's RSS charge. On a MAP_SHARED file mapping this cannot lose
// data — dirty pages live in the page cache under writeback, and a
// later read simply refaults from the file.
func madviseDontNeed(b []byte) error { return syscall.Madvise(b, syscall.MADV_DONTNEED) }

// pageSize for aligning madvise ranges.
var pageSize = int64(syscall.Getpagesize())
