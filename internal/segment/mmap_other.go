//go:build !linux

package segment

import "errors"

const mmapSupported = false

func mmapFile(fd int, length int64) ([]byte, error) {
	return nil, errors.New("segment: mmap not supported on this platform")
}

func munmapFile(b []byte) error { return nil }

func madviseDontNeed(b []byte) error { return nil }

var pageSize = int64(4096)
