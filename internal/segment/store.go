package segment

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"sciborq/internal/column"
	"sciborq/internal/table"
)

// DefaultSealRows is the tail size at which the store seals: syncs the
// column files, rewrites the manifest (zones, dictionary counts,
// segment CRCs), and truncates the WAL. Four zone-map granules — large
// enough that seal cost amortises, small enough that the WAL a crash
// must replay stays modest.
const DefaultSealRows = 4 * granuleRows

// Options configures a Store.
type Options struct {
	// Dir is the table's data directory (one directory per table).
	Dir string
	// SealRows is the unsealed-tail row threshold that triggers a seal;
	// <= 0 means DefaultSealRows.
	SealRows int
	// NoMmap forces heap-resident storage even where mmap is available
	// (tests, and a safety hatch).
	NoMmap bool
	// VerifyOnOpen checks every sealed segment's per-column CRC32 at
	// open — a full read of the sealed data, so it is off by default
	// (larger-than-RAM tables open lazily); recovery tests turn it on.
	VerifyOnOpen bool
	// Cache, when non-nil, tracks granule residency and evicts cold
	// granules under its byte budget. Shared across stores.
	Cache *Cache
}

// Store owns one table's durable storage: per-column data files served
// to the engine as mapped slices, the WAL that makes Load batches
// durable before acknowledgement, and the manifest sealing the durable
// prefix. It implements table.Pager so engine scans feed the granule
// cache.
//
// Locking: Store.mu serialises all mutation (LoadBatch, seal, Close)
// and is ordered AFTER Cache.mu (the cache calls granuleBytes and
// evictGranule while holding its own lock) and BEFORE the table lock
// (fold runs inside Table.ExtendWith). Store code must therefore never
// call Cache methods while holding Store.mu.
type Store struct {
	mu     sync.Mutex
	dir    string
	t      *table.Table
	schema table.Schema
	opts   Options

	files []*colFile
	cols  []column.Column // live headers; the store is their sole mutator

	// VARCHAR sidecars: dictionary files (u32 len | bytes per word, in
	// code order), with the sealed word count and byte offset. Entries
	// beyond the sealed count are re-created deterministically by WAL
	// replay, so recovery truncates them.
	dictF     []*os.File
	dictWords []int
	dictOff   []int64

	wal        *wal
	rows       int
	sealedRows int
	seq        uint64
	segments   []manSegment

	closed      atomic.Bool
	recovered   bool
	walBatches  int64
	replayed    int64
	seals       int64
	lastSealErr error
}

// Open attaches durable storage under t, rooted at opts.Dir.
//
// Fresh directory: the table's current rows (a pre-generated catalogue,
// the paper's "extracted from an existing database" mode, §3.3) are
// imported as the initial sealed segment; an empty table starts an
// empty store. Existing directory: the manifest's sealed prefix is
// mapped back in (zones restored from the manifest, dictionaries from
// their sidecars — no data rescan), the WAL is replayed batch-atomically
// with torn-tail tolerance, and any rows the table held in memory are
// discarded — the durable state is the truth. Either way the table is
// marked durable: direct appends are rejected, ingest must flow through
// LoadBatch (via the loader), and scans feed the granule cache.
func Open(t *table.Table, opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("segment: empty data directory")
	}
	if opts.SealRows <= 0 {
		opts.SealRows = DefaultSealRows
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: opts.Dir, t: t, schema: t.Schema(), opts: opts}
	man, found, err := readManifest(opts.Dir)
	if err != nil {
		return nil, err
	}
	if found {
		if err := checkSchema(man, s.schema); err != nil {
			return nil, err
		}
		err = s.recoverFrom(man)
	} else {
		err = s.initFresh()
	}
	if err != nil {
		s.closeFiles()
		return nil, err
	}
	t.SetPager(s)
	return s, nil
}

func (s *Store) colPath(name string) string  { return filepath.Join(s.dir, name+".col") }
func (s *Store) dictPath(name string) string { return filepath.Join(s.dir, name+".dict") }
func (s *Store) walPath() string             { return filepath.Join(s.dir, "wal.log") }

// openFiles opens every column file (and VARCHAR dict sidecar) with
// capacity for needRows.
func (s *Store) openFiles(needRows int) error {
	s.files = make([]*colFile, len(s.schema))
	s.dictF = make([]*os.File, len(s.schema))
	s.dictWords = make([]int, len(s.schema))
	s.dictOff = make([]int64, len(s.schema))
	for i, def := range s.schema {
		f, err := openColFile(s.colPath(def.Name), elemSize(def.Type), needRows, s.opts.NoMmap)
		if err != nil {
			return err
		}
		s.files[i] = f
		if def.Type == column.String {
			df, err := os.OpenFile(s.dictPath(def.Name), os.O_RDWR|os.O_CREATE, 0o644)
			if err != nil {
				return err
			}
			s.dictF[i] = df
		}
	}
	return nil
}

// initFresh sets up a brand-new data directory, importing any rows the
// table already holds as the initial sealed segment.
func (s *Store) initFresh() error {
	n := s.t.Len()
	if err := s.openFiles(n); err != nil {
		return err
	}
	var err error
	s.wal, err = openWAL(s.walPath())
	if err != nil {
		return err
	}
	// Import under the table lock: write every existing value to its
	// column file, then swap the headers onto the mapping. ExtendWith
	// also hands us the live column objects the store mutates from here
	// on.
	impErr := s.t.ExtendWith(func(cols []column.Column) error {
		s.cols = cols
		for ci := range s.schema {
			if err := s.writeColumnRange(ci, cols[ci], 0, n); err != nil {
				return err
			}
		}
		s.swapHeaders(cols, n, 0)
		return nil
	})
	if impErr != nil {
		return impErr
	}
	s.rows = n
	// Seal the imported rows (or write the empty manifest) so the next
	// open finds a footer.
	return s.sealLocked(true)
}

// recoverFrom rebuilds the table from an existing data directory.
func (s *Store) recoverFrom(man *manifest) error {
	s.sealedRows = man.SealedRows
	s.rows = man.SealedRows
	s.segments = man.Segments
	s.recovered = true
	// A sealed prefix with a missing column file is unrecoverable
	// corruption — refuse loudly rather than serving zeros.
	if man.SealedRows > 0 {
		for _, def := range s.schema {
			if _, err := os.Stat(s.colPath(def.Name)); err != nil {
				return fmt.Errorf("segment: table %q: missing column file for %q: %w",
					s.t.Name(), def.Name, err)
			}
		}
	}
	if err := s.openFiles(man.SealedRows); err != nil {
		return err
	}
	if s.opts.VerifyOnOpen {
		if err := s.verifySegments(); err != nil {
			return err
		}
	}
	// Rebuild the columns over the mappings: zones from the manifest,
	// dictionaries from their sidecars — no data rescan.
	cols := make([]column.Column, len(s.schema))
	for ci, def := range s.schema {
		mc := man.Columns[ci]
		b := s.files[ci].bytes()
		switch def.Type {
		case column.Float64:
			c := column.NewFloat64(def.Name)
			zmin, zmax, err := decodeZones(mc)
			if err != nil {
				return err
			}
			c.InstallZones(zmin, zmax)
			c.SetMapped(f64View(b, man.SealedRows), man.SealedRows)
			cols[ci] = c
		case column.Int64:
			c := column.NewInt64(def.Name)
			zmin, zmax, err := decodeZones(mc)
			if err != nil {
				return err
			}
			c.InstallZones(zmin, zmax)
			c.SetMapped(i64View(b, man.SealedRows), man.SealedRows)
			cols[ci] = c
		case column.Bool:
			c := column.NewBool(def.Name)
			// Validate even when VerifyOnOpen is off: a corrupt byte here
			// is not merely wrong data — reinterpreting it as a Go bool is
			// undefined behavior. One byte per row, so the pass is cheap.
			if err := checkBoolBytes(b, man.SealedRows); err != nil {
				return fmt.Errorf("segment: table %q column %q: %w", s.t.Name(), def.Name, err)
			}
			c.SetMapped(boolView(b, man.SealedRows))
			cols[ci] = c
		case column.String:
			c := column.NewString(def.Name)
			words, off, err := readDict(s.dictF[ci], mc.DictWords)
			if err != nil {
				return fmt.Errorf("segment: table %q column %q: %w", s.t.Name(), def.Name, err)
			}
			// Words beyond the sealed count were appended by a seal the
			// crash interrupted before the manifest landed; WAL replay
			// re-interns them, so drop the file tail to match.
			if err := s.dictF[ci].Truncate(off); err != nil {
				return err
			}
			s.dictWords[ci] = mc.DictWords
			s.dictOff[ci] = off
			c.LoadDict(words)
			c.SetMappedCodes(i32View(b, man.SealedRows))
			cols[ci] = c
		}
	}
	if err := s.t.AdoptColumns(cols); err != nil {
		return err
	}
	s.cols = cols
	// Replay the WAL: every intact record folds exactly as the live
	// LoadBatch folded it — same writes, same zones, same dictionary
	// interning order — so the recovered table is bit-identical to the
	// acknowledged-batch prefix. The torn tail, if any, is truncated.
	// Records at or below the manifest's sealed-sequence watermark are
	// skipped, not folded: a crash (or truncate failure) between the
	// manifest rename and the WAL truncate leaves them in the log even
	// though the sealed prefix already contains their rows. Sequence
	// numbers must be contiguous — a gap means records were lost from
	// an intact log, which is corruption, not a crash shape.
	var err error
	s.wal, err = openWAL(s.walPath())
	if err != nil {
		return err
	}
	s.seq = man.SealedSeq
	prev, first := uint64(0), true
	return s.wal.replay(func(payload []byte) error {
		seq, batch, err := decodeBatch(s.schema, payload)
		if err != nil {
			return err
		}
		if first {
			if seq > man.SealedSeq+1 {
				return fmt.Errorf("segment: table %q: wal sequence gap: first record is seq %d, sealed prefix ends at seq %d",
					s.t.Name(), seq, man.SealedSeq)
			}
			first = false
		} else if seq != prev+1 {
			return fmt.Errorf("segment: table %q: wal sequence gap: record seq %d follows seq %d",
				s.t.Name(), seq, prev)
		}
		prev = seq
		if seq <= man.SealedSeq {
			return nil // already inside the sealed prefix; do not fold twice
		}
		if err := s.foldLocked(batch); err != nil {
			return err
		}
		s.seq = seq
		s.replayed++
		return nil
	})
}

// verifySegments checks every sealed segment's per-column CRC32.
func (s *Store) verifySegments() error {
	for _, seg := range s.segments {
		for ci, def := range s.schema {
			f := s.files[ci]
			lo := int64(seg.StartRow) * f.elem
			hi := int64(seg.StartRow+seg.Rows) * f.elem
			got := crc32.ChecksumIEEE(f.bytes()[lo:hi])
			if want, ok := seg.CRC[def.Name]; ok && got != want {
				return fmt.Errorf("segment: table %q column %q rows [%d,%d): checksum mismatch (%08x != %08x)",
					s.t.Name(), def.Name, seg.StartRow, seg.StartRow+seg.Rows, got, want)
			}
		}
	}
	return nil
}

// decodeZones decodes a manifest column's granule arrays.
func decodeZones(mc manCol) (zmin, zmax []float64, err error) {
	if zmin, err = decodeF64s(mc.Zmin); err != nil {
		return nil, nil, err
	}
	if zmax, err = decodeF64s(mc.Zmax); err != nil {
		return nil, nil, err
	}
	if len(zmin) != len(zmax) {
		return nil, nil, fmt.Errorf("segment: zone arrays disagree: %d vs %d granules", len(zmin), len(zmax))
	}
	return zmin, zmax, nil
}

// readDict reads the first words entries of a dict sidecar, returning
// them and the byte offset just past the last one.
func readDict(f *os.File, words int) ([]string, int64, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, 0, err
	}
	data := make([]byte, fi.Size())
	if _, err := f.ReadAt(data, 0); err != nil && fi.Size() > 0 {
		return nil, 0, err
	}
	out := make([]string, 0, words)
	off := int64(0)
	for len(out) < words {
		if int64(len(data))-off < 4 {
			return nil, 0, fmt.Errorf("dictionary truncated: %d of %d words", len(out), words)
		}
		l := int64(binary.LittleEndian.Uint32(data[off:]))
		if int64(len(data))-off-4 < l {
			return nil, 0, fmt.Errorf("dictionary truncated: %d of %d words", len(out), words)
		}
		out = append(out, string(data[off+4:off+4+l]))
		off += 4 + l
	}
	return out, off, nil
}

// LoadBatch makes one batch durable and visible: validate, append to
// the WAL and fsync (the acknowledgement point — returning nil means
// the batch survives any crash), fold into the mapped columns under the
// table lock, and seal when the unsealed tail crosses the threshold.
// Batch-atomic throughout: a validation or WAL failure leaves no trace,
// and a fold failure after the WAL write un-acks by truncating the
// record back out, so recovery replays exactly the batches callers saw
// succeed.
func (s *Store) LoadBatch(batch []table.Row) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return fmt.Errorf("segment: table %q: store is closed", s.t.Name())
	}
	if len(batch) == 0 {
		return nil
	}
	if err := s.validate(batch); err != nil {
		return err
	}
	payload := encodeBatch(s.seq+1, s.schema, batch)
	start, err := s.wal.append(payload)
	if err != nil {
		return err
	}
	s.seq++
	if err := s.foldLocked(batch); err != nil {
		// Un-ack: the record must leave the log, or recovery would
		// resurrect a batch the caller saw fail. If the truncate itself
		// fails the record stays — the WAL is now poisoned (no further
		// appends can land behind it) so the store stops accepting
		// batches; surface both errors rather than silently continuing.
		if terr := s.wal.truncate(start); terr != nil {
			return fmt.Errorf("%w; un-ack failed, store now rejects loads: %v", err, terr)
		}
		s.seq--
		return err
	}
	s.walBatches++
	if s.rows-s.sealedRows >= s.opts.SealRows {
		// A seal failure is not a batch failure: the rows are durable in
		// the WAL and visible in the table. Surface it on the next seal
		// attempt and in Stats instead.
		s.lastSealErr = s.sealLocked(false)
	}
	return nil
}

// validate type-checks a batch against the schema before anything is
// written, mirroring Table.AppendBatch's whole-batch validation.
func (s *Store) validate(batch []table.Row) error {
	for k, r := range batch {
		if len(r) != len(s.schema) {
			return fmt.Errorf("batch row %d: table %q: row arity %d, want %d",
				k, s.t.Name(), len(r), len(s.schema))
		}
		for i, def := range s.schema {
			ok := false
			switch def.Type {
			case column.Float64:
				_, ok = r[i].(float64)
			case column.Int64:
				_, ok = r[i].(int64)
			case column.String:
				_, ok = r[i].(string)
			case column.Bool:
				_, ok = r[i].(bool)
			}
			if !ok {
				return fmt.Errorf("batch row %d: table %q: column %q wants %s, got %T",
					k, s.t.Name(), def.Name, def.Type, r[i])
			}
		}
	}
	return nil
}

// foldLocked writes a validated batch into the column files and extends
// the table's headers over the mappings — the visibility step. File
// writes happen first (rows beyond the table length are invisible, so a
// partial failure changes nothing observable); the header swaps cannot
// fail. Runs under Store.mu; takes the table write lock via ExtendWith.
func (s *Store) foldLocked(batch []table.Row) error {
	n := len(batch)
	newRows := s.rows + n
	for _, f := range s.files {
		if err := f.ensure(newRows); err != nil {
			return err
		}
	}
	err := s.t.ExtendWith(func(cols []column.Column) error {
		for ci := range s.schema {
			if err := s.writeBatchColumn(ci, cols[ci], batch, s.rows); err != nil {
				return err
			}
		}
		s.swapHeaders(cols, newRows, s.rows)
		return nil
	})
	if err != nil {
		return err
	}
	s.rows = newRows
	return nil
}

// writeBatchColumn serialises one column of a batch to its file at row
// offset base. VARCHAR values are interned into the live dictionary
// here — under the table write lock, because interning mutates the
// dictionary that concurrent Snapshot calls read.
func (s *Store) writeBatchColumn(ci int, col column.Column, batch []table.Row, base int) error {
	f := s.files[ci]
	n := len(batch)
	buf := make([]byte, int64(n)*f.elem)
	switch s.schema[ci].Type {
	case column.Float64:
		for ri, r := range batch {
			binary.LittleEndian.PutUint64(buf[ri*8:], math.Float64bits(r[ci].(float64)))
		}
	case column.Int64:
		for ri, r := range batch {
			binary.LittleEndian.PutUint64(buf[ri*8:], uint64(r[ci].(int64)))
		}
	case column.Bool:
		for ri, r := range batch {
			if r[ci].(bool) {
				buf[ri] = 1
			}
		}
	case column.String:
		sc := col.(*column.StringCol)
		for ri, r := range batch {
			binary.LittleEndian.PutUint32(buf[ri*4:], uint32(sc.Intern(r[ci].(string))))
		}
	}
	return f.write(int64(base)*f.elem, buf)
}

// writeColumnRange serialises rows [lo, hi) of an existing in-memory
// column to its file — the fresh-directory import path.
func (s *Store) writeColumnRange(ci int, col column.Column, lo, hi int) error {
	if hi <= lo {
		return nil
	}
	f := s.files[ci]
	n := hi - lo
	buf := make([]byte, int64(n)*f.elem)
	switch c := col.(type) {
	case *column.Float64Col:
		for i, v := range c.Data[lo:hi] {
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
		}
	case *column.Int64Col:
		for i, v := range c.Data[lo:hi] {
			binary.LittleEndian.PutUint64(buf[i*8:], uint64(v))
		}
	case *column.BoolCol:
		for i, v := range c.Data[lo:hi] {
			if v {
				buf[i] = 1
			}
		}
	case *column.StringCol:
		for i, code := range c.Data[lo:hi] {
			binary.LittleEndian.PutUint32(buf[i*4:], uint32(code))
		}
	}
	return f.write(int64(lo)*f.elem, buf)
}

// swapHeaders points every column at its mapping with length newRows.
// from is the previous length: zone maps observe only the new rows.
func (s *Store) swapHeaders(cols []column.Column, newRows, from int) {
	for ci := range s.schema {
		b := s.files[ci].bytes()
		switch c := cols[ci].(type) {
		case *column.Float64Col:
			c.SetMapped(f64View(b, newRows), from)
		case *column.Int64Col:
			c.SetMapped(i64View(b, newRows), from)
		case *column.BoolCol:
			c.SetMapped(boolView(b, newRows))
		case *column.StringCol:
			c.SetMappedCodes(i32View(b, newRows))
		}
	}
}

// sealLocked makes the current row count the durable sealed prefix:
// sync the column files, persist new dictionary words, rewrite the
// manifest (atomic rename), then truncate the WAL. Crash ordering is
// safe at every step — until the manifest rename lands, the old
// manifest plus the still-intact WAL reproduce the same rows; after it,
// the manifest's sealed_seq watermark makes the WAL's records
// redundant (replay skips seq <= watermark), so a crash — or a failed
// truncate — that leaves them in the log cannot fold them twice. A
// failed truncate additionally poisons the WAL against appends, since
// the log's safe extent is then unknown. force writes a manifest even
// with nothing new to seal (the initial footer of a fresh directory).
func (s *Store) sealLocked(force bool) error {
	if s.rows == s.sealedRows && !force {
		return nil
	}
	for _, f := range s.files {
		if err := f.sync(); err != nil {
			return err
		}
	}
	// Persist dictionary suffixes. Offsets and counts advance only
	// after the manifest lands; a crash in between leaves orphan words
	// the next open truncates.
	newDictWords := make([]int, len(s.schema))
	newDictOff := make([]int64, len(s.schema))
	copy(newDictWords, s.dictWords)
	copy(newDictOff, s.dictOff)
	for ci, def := range s.schema {
		if def.Type != column.String {
			continue
		}
		words := s.cols[ci].(*column.StringCol).Dict()
		var buf []byte
		for _, w := range words[s.dictWords[ci]:] {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(w)))
			buf = append(buf, w...)
		}
		if len(buf) > 0 {
			if _, err := s.dictF[ci].WriteAt(buf, s.dictOff[ci]); err != nil {
				return err
			}
			if err := s.dictF[ci].Sync(); err != nil {
				return err
			}
		}
		newDictWords[ci] = len(words)
		newDictOff[ci] = s.dictOff[ci] + int64(len(buf))
	}
	segments := s.segments
	if s.rows > s.sealedRows {
		seg := manSegment{StartRow: s.sealedRows, Rows: s.rows - s.sealedRows,
			CRC: make(map[string]uint32, len(s.schema))}
		for ci, def := range s.schema {
			f := s.files[ci]
			seg.CRC[def.Name] = crc32.ChecksumIEEE(
				f.bytes()[int64(s.sealedRows)*f.elem : int64(s.rows)*f.elem])
		}
		segments = append(segments, seg)
	}
	man := &manifest{
		Version:    manifestVersion,
		Table:      s.t.Name(),
		SealedRows: s.rows,
		SealedSeq:  s.seq,
		Segments:   segments,
		Columns:    make([]manCol, len(s.schema)),
	}
	for ci, def := range s.schema {
		mc := manCol{Name: def.Name, Type: def.Type.String()}
		switch c := s.cols[ci].(type) {
		case *column.Float64Col:
			zmin, zmax := c.ZoneArrays()
			mc.Zmin, mc.Zmax = encodeF64s(zmin), encodeF64s(zmax)
		case *column.Int64Col:
			zmin, zmax := c.ZoneArrays()
			mc.Zmin, mc.Zmax = encodeF64s(zmin), encodeF64s(zmax)
		case *column.StringCol:
			mc.DictWords = newDictWords[ci]
		}
		man.Columns[ci] = mc
	}
	if err := writeManifest(s.dir, man); err != nil {
		return err
	}
	s.segments = segments
	s.dictWords = newDictWords
	s.dictOff = newDictOff
	s.sealedRows = s.rows
	s.seals++
	// The sequence counter is NOT reset: it is the watermark's clock,
	// monotonic for the store's lifetime, so skipped-on-replay and
	// to-be-folded records can never be confused.
	return s.wal.truncate(0)
}

// Seal forces a seal of the current unsealed tail — shutdown's final
// flush, and a test hook.
func (s *Store) Seal() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sealLocked(false)
}

// Touch implements table.Pager: engine scans report every morsel they
// actually read (post zone-pruning).
func (s *Store) Touch(lo, hi int) {
	if s.opts.Cache == nil || hi <= lo || s.closed.Load() {
		return
	}
	s.opts.Cache.touch(s, lo/granuleRows, (hi-1)/granuleRows)
}

// granuleBytes estimates granule g's resident footprint across all
// columns. Called by the Cache under its own lock (never call back).
func (s *Store) granuleBytes(g int) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	lo := g * granuleRows
	hi := lo + granuleRows
	if hi > s.rows {
		hi = s.rows
	}
	if hi <= lo {
		return 0
	}
	var sum int64
	for _, f := range s.files {
		sum += int64(hi-lo) * f.elem
	}
	return sum
}

// evictGranule advises granule g's pages out of every column mapping.
// Safe for unsynced rows: the pages are dirty in the page cache (writes
// go through pwrite), and MADV_DONTNEED on a MAP_SHARED mapping drops
// only this mapping's references — a later read refaults from the file.
func (s *Store) evictGranule(g int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return
	}
	lo := int64(g) * granuleRows
	hi := lo + granuleRows
	for _, f := range s.files {
		f.evict(lo*f.elem, hi*f.elem)
	}
}

// Recovered reports whether this store was opened over an existing data
// directory (manifest found) rather than initialising a fresh one.
func (s *Store) Recovered() bool { return s.recovered }

// Rows returns the folded (acknowledged) row count.
func (s *Store) Rows() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rows
}

// Close seals the tail and releases files and mappings. Callers must
// have quiesced queries first (server drain): outstanding snapshots
// hold slices into the mappings, which Close unmaps.
func (s *Store) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	if s.opts.Cache != nil {
		// closed is set BEFORE forget runs, and Cache.touch re-checks
		// closed under Cache.mu — so a Touch racing this Close either
		// inserts entries forget will sweep, or observes closed and
		// bails; no entry can be re-admitted after the sweep. Called
		// under no Store lock (lock order: Cache.mu before Store.mu).
		s.opts.Cache.forget(s)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	first := s.sealLocked(false)
	if err := s.closeFilesLocked(); err != nil && first == nil {
		first = err
	}
	return first
}

func (s *Store) closeFiles() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed.Store(true)
	return s.closeFilesLocked()
}

func (s *Store) closeFilesLocked() error {
	var first error
	for _, f := range s.files {
		if f == nil {
			continue
		}
		if err := f.close(); err != nil && first == nil {
			first = err
		}
	}
	for _, df := range s.dictF {
		if df == nil {
			continue
		}
		if err := df.Close(); err != nil && first == nil {
			first = err
		}
	}
	if s.wal != nil {
		if err := s.wal.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// StoreStats is the /stats view of one table's durable storage.
type StoreStats struct {
	Rows            int    `json:"rows"`
	SealedRows      int    `json:"sealed_rows"`
	Segments        int    `json:"segments"`
	Seals           int64  `json:"seals"`
	WALBatches      int64  `json:"wal_batches"`
	WALBytes        int64  `json:"wal_bytes"`
	ReplayedBatches int64  `json:"replayed_batches"`
	Recovered       bool   `json:"recovered"`
	Mapped          bool   `json:"mapped"`
	DiskBytes       int64  `json:"disk_bytes"`
	LastSealError   string `json:"last_seal_error,omitempty"`
	// WALError, when set, means the log is poisoned (a truncate failed,
	// leaving its extent ambiguous) and the store rejects all loads.
	WALError string `json:"wal_error,omitempty"`
}

// Stats snapshots the store.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := StoreStats{
		Rows:            s.rows,
		SealedRows:      s.sealedRows,
		Segments:        len(s.segments),
		Seals:           s.seals,
		WALBatches:      s.walBatches,
		ReplayedBatches: s.replayed,
		Recovered:       s.recovered,
	}
	if s.wal != nil {
		st.WALBytes = s.wal.off
	}
	for _, f := range s.files {
		if f == nil {
			continue
		}
		st.DiskBytes += int64(s.rows) * f.elem
		if f.mapped != nil {
			st.Mapped = true
		}
	}
	st.DiskBytes += st.WALBytes
	if s.lastSealErr != nil {
		st.LastSealError = s.lastSealErr.Error()
	}
	if s.wal != nil && s.wal.failed != nil {
		st.WALError = s.wal.failed.Error()
	}
	return st
}
