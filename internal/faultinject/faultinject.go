// Package faultinject is a zero-cost-when-disabled fault registry: the
// serving stack declares named fault points (the morsel scan loop, the
// recycler and plan-cache lookups, admission, Load, the query handler),
// and a test arms a deterministic, seeded schedule of injections —
// errors, panics, and latency — against them. The chaos suite drives a
// booted server through such a schedule and asserts the resilience
// invariants: the process survives, every admission slot is released,
// and results are bit-identical to a fault-free run once faults stop.
//
// Cost discipline: with no plan armed, Fire is one atomic pointer load
// and a predictable branch — nothing else touches the hot path, so
// production binaries pay nothing for carrying the points. Armed plans
// are immutable after construction; per-point hit counters are atomics,
// so firing is race-free without a lock.
//
// Determinism discipline: a Schedule is derived from a seed alone. Each
// fault binds to the Nth hit of its point, so two runs that reach each
// point the same number of times inject exactly the same faults — the
// property that lets the chaos CI job replay a failure from its seed.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"
	"time"
)

// Known fault points. Constants live here (not in the packages that
// fire them) so the full injection surface is one readable list; firing
// an unscheduled point is free, so consumers never need registration.
const (
	// PointMorsel fires once per morsel a scan evaluates (engine
	// worker pool and sequential path alike).
	PointMorsel = "engine.morsel"
	// PointRecycler fires at the top of every recycler selection
	// lookup; an injected error degrades that query to the uncached
	// scan path (the cache is an optimisation, never a dependency).
	PointRecycler = "recycler.lookup"
	// PointPlanCache fires at the top of every plan-cache alias
	// lookup; an injected error degrades to a full parse.
	PointPlanCache = "plancache.lookup"
	// PointAdmission fires at the top of every admission Acquire.
	PointAdmission = "server.admission"
	// PointQuery fires in the HTTP query handler with an admission slot
	// held and its release deferred — the point that proves a handler
	// panic cannot leak a slot.
	PointQuery = "server.query"
	// PointLoad fires at the top of every DB.Load batch.
	PointLoad = "db.load"
	// PointWAL fires inside the segment store's WAL append, after the
	// record is serialised but before it is written and synced. An
	// injected error makes the store write a torn prefix of the record
	// and fail the batch — simulating a crash mid-write, the scenario
	// recovery's torn-tail tolerance exists for.
	PointWAL = "storage.wal"
	// PointWALTruncate fires inside the segment store's WAL truncate,
	// before the file is cut. An injected error leaves the log intact
	// and poisons it against further appends — simulating a truncate
	// failure in the seal or un-ack path, which the manifest's
	// sealed-sequence watermark must make survivable.
	PointWALTruncate = "storage.wal.truncate"
)

// Kind is the shape of one injected fault.
type Kind uint8

const (
	// KindError makes Fire return ErrInjected (wrapped with point and
	// hit) — the injection every call site must propagate or absorb.
	KindError Kind = iota
	// KindPanic makes Fire panic with *InjectedPanic — the injection
	// that proves the recover guards hold.
	KindPanic
	// KindLatency makes Fire sleep for the fault's Latency, then
	// return nil — the injection that exercises queueing, deadlines
	// and drains.
	KindLatency
)

// String names the kind for schedules and test output.
func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindPanic:
		return "panic"
	case KindLatency:
		return "latency"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ErrInjected is the sentinel every KindError injection wraps;
// errors.Is(err, ErrInjected) identifies injected failures in tests.
var ErrInjected = errors.New("faultinject: injected error")

// InjectedPanic is the value a KindPanic injection panics with, so
// recover guards (and tests) can tell an injected panic from a real one.
type InjectedPanic struct {
	Point string
	Hit   int64
}

func (p *InjectedPanic) String() string {
	return fmt.Sprintf("faultinject: injected panic at %s hit %d", p.Point, p.Hit)
}

// Fault schedules one injection: on the Hit-th time Point fires (1-based
// per-point hit count), inject Kind. Latency applies to KindLatency.
type Fault struct {
	Point   string
	Hit     int64
	Kind    Kind
	Latency time.Duration
}

// pointState is the armed per-point schedule: an immutable hit→fault
// map and a live hit counter.
type pointState struct {
	hits   atomic.Int64
	faults map[int64]Fault
}

// Plan is an armed set of faults plus fired counters. Build one with
// NewPlan or Schedule, arm it with Enable, and read the counters after
// the run. A Plan must not be mutated after Enable.
type Plan struct {
	points map[string]*pointState

	firedErrors    atomic.Int64
	firedPanics    atomic.Int64
	firedLatencies atomic.Int64
	total          int
}

// NewPlan builds a plan from explicit faults. Duplicate (point, hit)
// pairs keep the last fault.
func NewPlan(faults ...Fault) *Plan {
	p := &Plan{points: make(map[string]*pointState)}
	for _, f := range faults {
		ps := p.points[f.Point]
		if ps == nil {
			ps = &pointState{faults: make(map[int64]Fault)}
			p.points[f.Point] = ps
		}
		if _, dup := ps.faults[f.Hit]; !dup {
			p.total++
		}
		ps.faults[f.Hit] = f
	}
	return p
}

// Total returns the number of scheduled faults.
func (p *Plan) Total() int { return p.total }

// Fired reports how many injections of each kind have fired so far.
func (p *Plan) Fired() (errs, panics, latencies int64) {
	return p.firedErrors.Load(), p.firedPanics.Load(), p.firedLatencies.Load()
}

// FiredTotal is the sum of all fired injections.
func (p *Plan) FiredTotal() int64 {
	e, pa, l := p.Fired()
	return e + pa + l
}

// Hits reports how many times a point has fired (scheduled or not).
func (p *Plan) Hits(point string) int64 {
	ps := p.points[point]
	if ps == nil {
		return 0
	}
	return ps.hits.Load()
}

// fire advances the point's hit counter and injects the scheduled
// fault, if any.
func (p *Plan) fire(point string) error {
	ps := p.points[point]
	if ps == nil {
		return nil
	}
	hit := ps.hits.Add(1)
	f, ok := ps.faults[hit]
	if !ok {
		return nil
	}
	switch f.Kind {
	case KindPanic:
		p.firedPanics.Add(1)
		panic(&InjectedPanic{Point: point, Hit: hit})
	case KindLatency:
		p.firedLatencies.Add(1)
		time.Sleep(f.Latency)
		return nil
	default:
		p.firedErrors.Add(1)
		return fmt.Errorf("%w at %s hit %d", ErrInjected, point, hit)
	}
}

// armed is the globally active plan; nil means disabled, which is the
// only state production code ever observes.
var armed atomic.Pointer[Plan]

// Enable arms a plan: subsequent Fire calls consult its schedule. The
// plan must not be mutated while armed. Enable(nil) is Disable.
func Enable(p *Plan) { armed.Store(p) }

// Disable disarms injection; Fire returns to its zero-cost path.
func Disable() { armed.Store(nil) }

// Enabled reports whether a plan is armed.
func Enabled() bool { return armed.Load() != nil }

// Fire is the per-point hook: call it at the fault point and propagate
// the returned error as that operation's failure. Disabled (the
// production state) it is one atomic load and a branch. Armed, it
// advances the point's hit count and injects the scheduled fault:
// returning a wrapped ErrInjected, panicking with *InjectedPanic, or
// sleeping the scheduled latency.
func Fire(point string) error {
	p := armed.Load()
	if p == nil {
		return nil
	}
	return p.fire(point)
}

// PointSpec describes one point's share of a seeded schedule.
type PointSpec struct {
	// Point names the fault point.
	Point string
	// Faults is how many injections to schedule at this point.
	Faults int
	// MaxHit bounds the hit indices faults bind to: indices are drawn
	// without replacement from [1, MaxHit]. MaxHit < Faults is raised
	// to Faults.
	MaxHit int64
	// Kinds are the permitted kinds (defaults to {KindError} when
	// empty). Points reached on goroutines without a recover guard —
	// e.g. a test's own load loop — must exclude KindPanic.
	Kinds []Kind
	// MaxLatency bounds KindLatency sleeps (default 5ms); actual
	// latencies are drawn from [MaxLatency/4, MaxLatency].
	MaxLatency time.Duration
}

// Schedule derives a deterministic fault plan from a seed: for each
// spec, Faults distinct hit indices in [1, MaxHit] each get a kind and
// (for latency) a duration drawn from the seeded stream. The same seed
// and specs always produce the identical plan, so a chaos failure
// replays from its seed alone.
func Schedule(seed uint64, specs []PointSpec) *Plan {
	rng := rand.New(rand.NewSource(int64(seed)))
	var faults []Fault
	for _, spec := range specs {
		kinds := spec.Kinds
		if len(kinds) == 0 {
			kinds = []Kind{KindError}
		}
		maxLat := spec.MaxLatency
		if maxLat <= 0 {
			maxLat = 5 * time.Millisecond
		}
		maxHit := spec.MaxHit
		if maxHit < int64(spec.Faults) {
			maxHit = int64(spec.Faults)
		}
		seen := make(map[int64]struct{}, spec.Faults)
		for len(seen) < spec.Faults {
			hit := 1 + rng.Int63n(maxHit)
			if _, dup := seen[hit]; dup {
				continue
			}
			seen[hit] = struct{}{}
		}
		hits := make([]int64, 0, len(seen))
		for h := range seen {
			hits = append(hits, h)
		}
		// Map iteration order is random; kinds must bind to hits
		// deterministically from the seed alone.
		sort.Slice(hits, func(i, j int) bool { return hits[i] < hits[j] })
		for _, hit := range hits {
			f := Fault{Point: spec.Point, Hit: hit, Kind: kinds[rng.Intn(len(kinds))]}
			if f.Kind == KindLatency {
				lo := maxLat / 4
				f.Latency = lo + time.Duration(rng.Int63n(int64(maxLat-lo)+1))
			}
			faults = append(faults, f)
		}
	}
	return NewPlan(faults...)
}
