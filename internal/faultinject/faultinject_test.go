package faultinject

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestDisabledFireIsNil(t *testing.T) {
	Disable()
	if Enabled() {
		t.Fatal("Enabled() = true with no plan armed")
	}
	for i := 0; i < 100; i++ {
		if err := Fire(PointMorsel); err != nil {
			t.Fatalf("disabled Fire returned %v", err)
		}
	}
}

func TestErrorInjectionFiresOnScheduledHit(t *testing.T) {
	p := NewPlan(Fault{Point: PointRecycler, Hit: 3, Kind: KindError})
	Enable(p)
	defer Disable()
	for hit := 1; hit <= 5; hit++ {
		err := Fire(PointRecycler)
		if hit == 3 {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("hit 3: want ErrInjected, got %v", err)
			}
		} else if err != nil {
			t.Fatalf("hit %d: unexpected error %v", hit, err)
		}
	}
	if e, pa, l := p.Fired(); e != 1 || pa != 0 || l != 0 {
		t.Fatalf("Fired() = (%d,%d,%d), want (1,0,0)", e, pa, l)
	}
	if got := p.Hits(PointRecycler); got != 5 {
		t.Fatalf("Hits = %d, want 5", got)
	}
}

func TestPanicInjection(t *testing.T) {
	p := NewPlan(Fault{Point: PointQuery, Hit: 1, Kind: KindPanic})
	Enable(p)
	defer Disable()
	defer func() {
		r := recover()
		ip, ok := r.(*InjectedPanic)
		if !ok {
			t.Fatalf("recovered %v (%T), want *InjectedPanic", r, r)
		}
		if ip.Point != PointQuery || ip.Hit != 1 {
			t.Fatalf("panic identity = %+v", ip)
		}
		if _, pa, _ := p.Fired(); pa != 1 {
			t.Fatalf("fired panics = %d, want 1", pa)
		}
	}()
	_ = Fire(PointQuery)
	t.Fatal("Fire did not panic")
}

func TestLatencyInjectionSleeps(t *testing.T) {
	const lat = 30 * time.Millisecond
	p := NewPlan(Fault{Point: PointLoad, Hit: 1, Kind: KindLatency, Latency: lat})
	Enable(p)
	defer Disable()
	start := time.Now()
	if err := Fire(PointLoad); err != nil {
		t.Fatalf("latency injection returned error %v", err)
	}
	if d := time.Since(start); d < lat {
		t.Fatalf("Fire returned after %v, want >= %v", d, lat)
	}
	if _, _, l := p.Fired(); l != 1 {
		t.Fatalf("fired latencies = %d, want 1", l)
	}
}

// TestScheduleDeterministic: the same seed and specs produce the
// identical plan — the chaos suite's replayability guarantee.
func TestScheduleDeterministic(t *testing.T) {
	specs := []PointSpec{
		{Point: PointMorsel, Faults: 20, MaxHit: 100, Kinds: []Kind{KindError, KindPanic, KindLatency}},
		{Point: PointAdmission, Faults: 10, MaxHit: 50},
	}
	a, b := Schedule(42, specs), Schedule(42, specs)
	if a.Total() != 30 || b.Total() != 30 {
		t.Fatalf("totals = %d, %d, want 30", a.Total(), b.Total())
	}
	for point, ps := range a.points {
		qs := b.points[point]
		if qs == nil {
			t.Fatalf("plan b missing point %s", point)
		}
		if len(ps.faults) != len(qs.faults) {
			t.Fatalf("%s: fault counts differ: %d vs %d", point, len(ps.faults), len(qs.faults))
		}
		for hit, f := range ps.faults {
			g, ok := qs.faults[hit]
			if !ok || f != g {
				t.Fatalf("%s hit %d: %+v vs %+v", point, hit, f, g)
			}
		}
	}
	c := Schedule(43, specs)
	same := true
	for point, ps := range a.points {
		qs := c.points[point]
		if qs == nil || len(ps.faults) != len(qs.faults) {
			same = false
			break
		}
		for hit, f := range ps.faults {
			if g, ok := qs.faults[hit]; !ok || f != g {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestConcurrentFire: firing from many goroutines is race-free and
// every scheduled error fires exactly once.
func TestConcurrentFire(t *testing.T) {
	const faults, hits = 50, 2000
	p := Schedule(7, []PointSpec{{Point: PointMorsel, Faults: faults, MaxHit: hits}})
	Enable(p)
	defer Disable()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < hits/8; i++ {
				_ = Fire(PointMorsel)
			}
		}()
	}
	wg.Wait()
	if e, _, _ := p.Fired(); e != faults {
		t.Fatalf("fired %d errors over %d hits, want %d", e, hits, faults)
	}
}

func BenchmarkFireDisabled(b *testing.B) {
	Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Fire(PointMorsel); err != nil {
			b.Fatal(err)
		}
	}
}
