package sciborq

// DB-level tests for durable storage (WithDataDir): restart recovery of
// acknowledged loads including deterministic impression rebuild, crash
// recovery without a clean Close, and serving tables larger than the
// granule-cache budget.

import (
	"math"
	"strconv"
	"testing"

	"sciborq/internal/engine"
	"sciborq/internal/skyserver"
)

const durTable = "PhotoObjAll"

// newDurableSky builds the standard SkyServer fixture over a data
// directory. backfill selects the impression deployment mode: false is
// the in-line load path (fresh daemon), true extracts the hierarchy
// from the already-present rows (restart).
func newDurableSky(t *testing.T, dir string, backfill bool, extra ...Option) *DB {
	t.Helper()
	base := []Option{
		WithCostModel(engine.CostModel{NsPerRow: 12, FixedNs: 2000}),
		WithSeed(2011),
	}
	if dir != "" {
		base = append(base, WithDataDir(dir), WithSealRows(24_000))
	}
	db := Open(append(base, extra...)...)
	cfg := skyserver.DefaultConfig(0)
	sky, err := skyserver.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fact, err := sky.Catalog.Get(durTable)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AttachTable(fact); err != nil {
		t.Fatal(err)
	}
	if err := db.TrackWorkload(durTable,
		Attr{Name: "ra", Min: cfg.RaMin, Max: cfg.RaMax, Beta: 30},
		Attr{Name: "dec", Min: cfg.DecMin, Max: cfg.DecMax, Beta: 30},
	); err != nil {
		t.Fatal(err)
	}
	if err := db.BuildImpressions(durTable, ImpressionConfig{
		Sizes:    []int{4000, 400},
		Policy:   Biased,
		Attrs:    []string{"ra", "dec"},
		Backfill: backfill,
	}); err != nil {
		t.Fatal(err)
	}
	return db
}

func loadNights(t *testing.T, db *DB, nights, rows int) {
	t.Helper()
	cfg := skyserver.DefaultConfig(0)
	sky, err := skyserver.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen := sky.Generator(nil)
	for n := 0; n < nights; n++ {
		if err := db.Load(durTable, gen.NextBatch(rows)); err != nil {
			t.Fatal(err)
		}
	}
}

// queryFingerprint runs a battery of exact queries and returns their
// scalar answers, bit-exact.
func queryFingerprint(t *testing.T, db *DB) []uint64 {
	t.Helper()
	queries := []struct{ sql, col string }{
		{"SELECT COUNT(*) AS v FROM PhotoObjAll", "v"},
		{"SELECT SUM(r) AS v FROM PhotoObjAll WHERE ra BETWEEN 150 AND 200", "v"},
		{"SELECT AVG(dec) AS v FROM PhotoObjAll WHERE r < 20", "v"},
		{"SELECT MIN(objID) AS v FROM PhotoObjAll WHERE fGetNearbyObjEq(165, 20, 3)", "v"},
		{"SELECT STDDEV(g) AS v FROM PhotoObjAll WHERE g > 15", "v"},
	}
	out := make([]uint64, 0, len(queries))
	for _, q := range queries {
		res, err := db.Exec(q.sql)
		if err != nil {
			t.Fatalf("%s: %v", q.sql, err)
		}
		v, err := res.Scalar(q.col)
		if err != nil {
			t.Fatalf("%s: %v", q.sql, err)
		}
		out = append(out, math.Float64bits(v))
	}
	return out
}

// boundedFingerprint runs one WITHIN ERROR query and returns the
// layer it was answered from plus the bit patterns of its estimates —
// identical layers (same sampled positions) give identical bits.
func boundedFingerprint(t *testing.T, db *DB) (string, []uint64) {
	t.Helper()
	res, err := db.Exec("SELECT COUNT(*) AS n, AVG(r) AS avg_r FROM PhotoObjAll" +
		" WHERE fGetNearbyObjEq(165, 20, 3) WITHIN ERROR 0.2 CONFIDENCE 0.9")
	if err != nil {
		t.Fatal(err)
	}
	if res.Bounded == nil {
		t.Fatal("bounded query returned an exact result")
	}
	bits := make([]uint64, 0, len(res.Bounded.Estimates))
	for _, e := range res.Bounded.Estimates {
		bits = append(bits, math.Float64bits(e.Value()))
	}
	return res.Bounded.Layer, bits
}

// TestDurableRestartRecoversLoads is the ISSUE's headline acceptance:
// restart a DB against the same data directory and every acknowledged
// Load batch is back bit-identically, impressions rebuild
// deterministically from the recovered rows, and loading continues.
func TestDurableRestartRecoversLoads(t *testing.T) {
	dir := t.TempDir()
	db1 := newDurableSky(t, dir, false)
	loadNights(t, db1, 5, 8000)
	wantRows := 40_000
	if tb, _ := db1.Table(durTable); tb.Len() != wantRows {
		t.Fatalf("rows before restart = %d", tb.Len())
	}
	wantExact := queryFingerprint(t, db1)
	if err := db1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: a fresh catalog table attaches over the existing
	// directory; the manifest + WAL are the truth, not the generator.
	db2 := newDurableSky(t, dir, true)
	defer db2.Close()
	if !db2.Recovered(durTable) {
		t.Fatal("restart did not recover the durable table")
	}
	tb2, _ := db2.Table(durTable)
	if tb2.Len() != wantRows {
		t.Fatalf("rows after restart = %d, want %d", tb2.Len(), wantRows)
	}
	gotExact := queryFingerprint(t, db2)
	for i := range wantExact {
		if gotExact[i] != wantExact[i] {
			t.Fatalf("exact query %d: %x after restart, want %x", i, gotExact[i], wantExact[i])
		}
	}

	// Impression rebuild determinism: an in-memory control DB with the
	// same rows and the same Backfill deployment must produce the same
	// layers — same seed and same offer order (0..N) — and therefore
	// bit-identical bounded answers.
	ctl := Open(WithCostModel(engine.CostModel{NsPerRow: 12, FixedNs: 2000}), WithSeed(2011))
	cfg := skyserver.DefaultConfig(0)
	sky, err := skyserver.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fact, _ := sky.Catalog.Get(durTable)
	if err := ctl.AttachTable(fact); err != nil {
		t.Fatal(err)
	}
	if err := ctl.TrackWorkload(durTable,
		Attr{Name: "ra", Min: cfg.RaMin, Max: cfg.RaMax, Beta: 30},
		Attr{Name: "dec", Min: cfg.DecMin, Max: cfg.DecMax, Beta: 30},
	); err != nil {
		t.Fatal(err)
	}
	loadRows := func() {
		gen := sky.Generator(nil)
		for n := 0; n < 5; n++ {
			if err := ctl.Load(durTable, gen.NextBatch(8000)); err != nil {
				t.Fatal(err)
			}
		}
	}
	loadRows()
	if err := ctl.BuildImpressions(durTable, ImpressionConfig{
		Sizes: []int{4000, 400}, Policy: Biased, Attrs: []string{"ra", "dec"},
		Backfill: true,
	}); err != nil {
		t.Fatal(err)
	}
	ctlLayer, ctlBits := boundedFingerprint(t, ctl)
	recLayer, recBits := boundedFingerprint(t, db2)
	if recLayer != ctlLayer {
		t.Fatalf("bounded layer after recovery = %q, control = %q", recLayer, ctlLayer)
	}
	if len(recBits) != len(ctlBits) {
		t.Fatalf("estimate count %d vs %d", len(recBits), len(ctlBits))
	}
	for i := range recBits {
		if recBits[i] != ctlBits[i] {
			t.Fatalf("estimate %d: %x after recovery, control %x", i, recBits[i], ctlBits[i])
		}
	}

	// Loading must continue seamlessly on the recovered store.
	loadNights(t, db2, 1, 8000)
	if tb2.Len() != wantRows+8000 {
		t.Fatalf("rows after post-recovery load = %d", tb2.Len())
	}
}

// TestDurableCrashWithoutClose reopens a directory whose owner never
// called Close: the unsealed tail lives only in the WAL, and replay must
// restore every acknowledged batch.
func TestDurableCrashWithoutClose(t *testing.T) {
	dir := t.TempDir()
	db1 := newDurableSky(t, dir, false)
	loadNights(t, db1, 3, 7000) // 21000 rows: below the seal threshold
	want := queryFingerprint(t, db1)
	// No Close: db1 simply ceases to matter, like a SIGKILL'd daemon.

	db2 := newDurableSky(t, dir, true)
	defer db2.Close()
	if !db2.Recovered(durTable) {
		t.Fatal("WAL-only state not recovered")
	}
	if tb, _ := db2.Table(durTable); tb.Len() != 21_000 {
		t.Fatalf("rows after crash recovery = %d, want 21000", tb.Len())
	}
	got := queryFingerprint(t, db2)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("exact query %d: %x after crash recovery, want %x", i, got[i], want[i])
		}
	}
	if db2.StorageStats() == nil {
		t.Fatal("StorageStats nil on a durable DB")
	}
}

// TestDurableLargerThanCacheBudget serves a table ~4x the granule-cache
// budget: filtered aggregates and bounded queries must stay correct
// while cold granules are advised out, with eviction observable in
// StorageStats.
func TestDurableLargerThanCacheBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("large durable table")
	}
	// Schema is x(f64) + k(i64): 16 bytes/row, so one 64K granule is
	// 1 MiB. 8 granules of data against a 2 MiB budget = 4x.
	const (
		granuleRows = 64 * 1024
		totalRows   = 8 * granuleRows
		budget      = 2 << 20
	)
	dir := t.TempDir()
	db := Open(
		WithCostModel(engine.CostModel{NsPerRow: 12, FixedNs: 2000}),
		WithSeed(7),
		WithDataDir(dir),
		WithGranuleCacheBudget(budget),
	)
	defer db.Close()
	ctl := Open(WithCostModel(engine.CostModel{NsPerRow: 12, FixedNs: 2000}), WithSeed(7))

	schema := Schema{{Name: "x", Type: Float64}, {Name: "k", Type: Int64}}
	if _, err := db.CreateTable("big", schema); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.CreateTable("big", schema); err != nil {
		t.Fatal(err)
	}
	for _, d := range []*DB{db, ctl} {
		if err := d.TrackWorkload("big",
			Attr{Name: "x", Min: 0, Max: totalRows, Beta: 30}); err != nil {
			t.Fatal(err)
		}
		if err := d.BuildImpressions("big", ImpressionConfig{
			Sizes: []int{8000, 800}, Policy: Biased, Attrs: []string{"x"},
		}); err != nil {
			t.Fatal(err)
		}
	}
	batch := make([]Row, 0, 16384)
	for lo := 0; lo < totalRows; lo += cap(batch) {
		batch = batch[:0]
		for i := lo; i < lo+cap(batch); i++ {
			batch = append(batch, Row{float64(i), int64(i % 977)})
		}
		if err := db.Load("big", batch); err != nil {
			t.Fatal(err)
		}
		if err := ctl.Load("big", batch); err != nil {
			t.Fatal(err)
		}
	}

	// Sweep filtered aggregates across the whole key space so every
	// granule is touched and the cold ones cycle through the cache.
	for g := 0; g < 8; g++ {
		lo, hi := g*granuleRows, (g+1)*granuleRows
		sql := "SELECT COUNT(*) AS n, SUM(k) AS s FROM big WHERE x BETWEEN " +
			strconv.Itoa(lo) + " AND " + strconv.Itoa(hi-1)
		want, err := ctl.Exec(sql)
		if err != nil {
			t.Fatal(err)
		}
		got, err := db.Exec(sql)
		if err != nil {
			t.Fatal(err)
		}
		for _, colName := range []string{"n", "s"} {
			wv, _ := want.Scalar(colName)
			gv, _ := got.Scalar(colName)
			if math.Float64bits(wv) != math.Float64bits(gv) {
				t.Fatalf("granule %d %s: durable %v, control %v", g, colName, gv, wv)
			}
		}
	}

	// A bounded query runs over the impression layers against the
	// mapped base snapshot.
	res, err := db.Exec("SELECT AVG(k) AS v FROM big WHERE x BETWEEN 100000 AND 300000" +
		" WITHIN ERROR 0.2 CONFIDENCE 0.9")
	if err != nil {
		t.Fatal(err)
	}
	if res.Bounded == nil {
		t.Fatal("bounded query fell back to exact")
	}

	st := db.StorageStats()
	if st == nil {
		t.Fatal("StorageStats nil")
	}
	cs := st.Cache
	if cs.BudgetBytes != budget {
		t.Fatalf("cache budget = %d, want %d", cs.BudgetBytes, budget)
	}
	if cs.Evictions == 0 {
		t.Fatalf("no evictions at 4x budget: %+v", cs)
	}
	if cs.ResidentBytes > budget {
		t.Fatalf("resident %d exceeds budget %d", cs.ResidentBytes, budget)
	}
	if ts, ok := st.Tables["big"]; !ok || ts.Rows != totalRows {
		t.Fatalf("table stats: %+v", st.Tables)
	}
}
