package sciborq

import (
	"fmt"
	"sync"
	"testing"
)

// Plan-cache-under-ingest audit (run under -race in CI), the front-end
// sibling of recycler_race_test.go: readers hammer one hot statement
// (alias-tier hits) and a stream of literal variants (shape-tier
// bindings) while Load batches bump the table version — eagerly
// invalidating plans — and a tiny budget forces constant eviction.
// Every answer must still be a batch-atomic prefix count: a stale plan
// whose prepared predicate leaks across versions would break it.
func TestPlanCacheConcurrentExecWhileLoad(t *testing.T) {
	db := Open(testCost(), WithParallelism(2), WithPlanCacheBudget(8*1024))
	if _, err := db.CreateTable("R", Schema{{Name: "v", Type: Float64}}); err != nil {
		t.Fatal(err)
	}
	if err := db.Load("R", raceBatch()); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for b := 0; b < raceBatches; b++ {
			if err := db.Load("R", raceBatch()); err != nil {
				t.Errorf("load %d: %v", b, err)
				return
			}
		}
	}()

	// check verifies a count is a batch-atomic prefix: each loaded batch
	// contributes exactly unit matching rows, so any snapshot-consistent
	// answer is a positive multiple of unit within the loaded range.
	check := func(g, i int, sql string, unit int) bool {
		res, err := db.Exec(sql)
		if err != nil {
			t.Errorf("goroutine %d: %v", g, err)
			return false
		}
		c, err := res.Scalar("c")
		if err != nil {
			t.Errorf("goroutine %d: %v", g, err)
			return false
		}
		n := int(c)
		if n < unit || n > unit*(raceBatches+1) || n%unit != 0 {
			t.Errorf("goroutine %d iter %d (%q): COUNT %d is not a batch-atomic prefix", g, i, sql, n)
			return false
		}
		return true
	}

	const goroutines = 4
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				// The hot repeated spelling (alias tier): 16 matches per
				// batch ...
				if !check(g, i, "SELECT COUNT(*) AS c FROM R WHERE v < 0.5", raceMatchPerLoad) {
					return
				}
				// ... and a fresh literal variant every iteration: same
				// shape, new bound — every batch row (all 64) matches
				// v < thresh for any thresh > 0.75.
				thresh := 0.9 + float64((g*60+i)%100)/1000
				if !check(g, i, fmt.Sprintf("SELECT COUNT(*) AS c FROM R WHERE v < %g", thresh), raceBatchRows) {
					return
				}
			}
		}(g)
	}
	wg.Wait()

	st := db.PlanCacheStats()
	if st.Hits+st.CanonHits+st.ShapeHits+st.Misses == 0 {
		t.Fatalf("queries bypassed the plan cache entirely: %+v", st)
	}
	if st.Invalidations == 0 {
		t.Fatalf("version bumps never invalidated a plan: %+v", st)
	}

	// After loads quiesce, the hot statement must hit the alias tier and
	// land on the final count.
	final := raceMatchPerLoad * (raceBatches + 1)
	warm := db.PlanCacheStats()
	for i := 0; i < 3; i++ {
		res, err := db.Exec("SELECT COUNT(*) AS c FROM R WHERE v < 0.5")
		if err != nil {
			t.Fatal(err)
		}
		c, err := res.Scalar("c")
		if err != nil {
			t.Fatal(err)
		}
		if int(c) != final {
			t.Fatalf("post-quiesce count %d, want %d", int(c), final)
		}
	}
	if quiesced := db.PlanCacheStats(); quiesced.Hits <= warm.Hits {
		t.Fatalf("post-quiesce repeats did not hit the alias tier: before %+v after %+v", warm, quiesced)
	}
}
