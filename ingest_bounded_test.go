package sciborq

import (
	"math"
	"sync"
	"testing"

	"sciborq/internal/xrand"
)

// Ingest-while-bounded-query audit (run under -race in CI): nightly
// loads stream into the base table while bounded aggregate queries,
// exact queries and hierarchy refreshes run concurrently. Extends the
// PR 2/3 ingest-audit pattern to the impression path: bounded
// executions take one base snapshot and clamp every layer view to it,
// so answers must always describe a batch-atomic prefix.

const (
	ingestBatchRows = 400
	ingestBatches   = 100
	ingestSeedRows  = 4000
)

func ingestFixture(t *testing.T) *DB {
	t.Helper()
	db := Open(testCost(), WithSeed(9))
	if _, err := db.CreateTable("T", Schema{
		{Name: "ra", Type: Float64},
		{Name: "r", Type: Float64},
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.BuildImpressions("T", ImpressionConfig{Sizes: []int{2000, 200}}); err != nil {
		t.Fatal(err)
	}
	if err := db.Load("T", ingestBatch(0)); err != nil {
		t.Fatal(err)
	}
	return db
}

func ingestBatch(seed uint64) []Row {
	rng := xrand.New(seed + 1)
	n := ingestBatchRows
	if seed == 0 {
		n = ingestSeedRows
	}
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{rng.Float64(), rng.Float64() * 10}
	}
	return rows
}

// TestIngestWhileBoundedQuery loads batches concurrently with bounded
// (WITHIN ERROR, WITHIN TIME) and exact aggregate queries plus
// hierarchy refreshes, asserting every answer is coherent and every
// exact COUNT(*) lands on a batch boundary.
func TestIngestWhileBoundedQuery(t *testing.T) {
	db := ingestFixture(t)
	done := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for b := 1; b <= ingestBatches; b++ {
			if err := db.Load("T", ingestBatch(uint64(b))); err != nil {
				t.Errorf("load %d: %v", b, err)
				return
			}
		}
	}()

	wg.Add(1)
	go func() {
		defer wg.Done()
		h := db.Hierarchy("T")
		for {
			select {
			case <-done:
				return
			default:
			}
			if err := h.Refresh(); err != nil {
				t.Errorf("refresh: %v", err)
				return
			}
		}
	}()

	queries := []string{
		"SELECT AVG(r) AS a FROM T WHERE ra < 0.5 WITHIN ERROR 0.25 CONFIDENCE 0.95",
		"SELECT COUNT(*) AS c, SUM(r) AS s FROM T WHERE ra BETWEEN 0.2 AND 0.8 WITHIN TIME 50ms",
		"SELECT MAX(r) AS m FROM T WITHIN ERROR 0.5",
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				// Exact COUNT(*): must describe a batch-atomic prefix.
				res, err := db.Exec("SELECT COUNT(*) AS c FROM T")
				if err != nil {
					t.Errorf("worker %d: exact count: %v", worker, err)
					return
				}
				c, err := res.Scalar("c")
				if err != nil {
					t.Errorf("worker %d: %v", worker, err)
					return
				}
				if n := int(c); n < ingestSeedRows ||
					(n-ingestSeedRows)%ingestBatchRows != 0 {
					t.Errorf("worker %d: COUNT(*) = %d is not a batch-atomic prefix", worker, n)
					return
				}
				// Bounded answers: no errors, coherent estimates.
				sql := queries[i%len(queries)]
				bres, err := db.Exec(sql)
				if err != nil {
					t.Errorf("worker %d: %q: %v", worker, sql, err)
					return
				}
				if bres.Bounded == nil || len(bres.Bounded.Estimates) == 0 {
					t.Errorf("worker %d: %q returned no bounded estimates", worker, sql)
					return
				}
				for _, e := range bres.Bounded.Estimates {
					if math.IsNaN(e.Value()) {
						t.Errorf("worker %d: %q: NaN estimate for %s (layer %s)",
							worker, sql, e.Spec.Name(), bres.Bounded.Layer)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// Quiesced: the final exact count covers every batch.
	res, err := db.Exec("SELECT COUNT(*) AS c FROM T")
	if err != nil {
		t.Fatal(err)
	}
	c, _ := res.Scalar("c")
	if want := ingestSeedRows + ingestBatches*ingestBatchRows; int(c) != want {
		t.Fatalf("final count %d, want %d", int(c), want)
	}
}

// TestIngestWhileBoundedProjection runs the impression-backed LIMIT
// projection path concurrently with loads: every returned position must
// come from the snapshot prefix (no out-of-range reads), which the
// -race run turns into a hard guarantee.
func TestIngestWhileBoundedProjection(t *testing.T) {
	db := ingestFixture(t)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for b := 1; b <= ingestBatches/2; b++ {
			if err := db.Load("T", ingestBatch(uint64(b))); err != nil {
				t.Errorf("load %d: %v", b, err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			res, err := db.Exec("SELECT ra, r FROM T WHERE ra < 0.9 LIMIT 20 WITHIN TIME 10ms")
			if err != nil {
				t.Errorf("projection: %v", err)
				return
			}
			if res.Rows == nil || res.Rows.Len() > 20 {
				t.Errorf("projection shape: %v", res.Rows)
				return
			}
		}
	}()
	wg.Wait()
}
