package sciborq

import (
	"testing"

	"sciborq/internal/engine"
	"sciborq/internal/expr"
	"sciborq/internal/recycler"
	"sciborq/internal/vec"
)

// Guards for the versioned-view contract: impression versions bump on
// every sample mutation, materialised fallback tables carry the
// version in their name (so identity-keyed caches like the recycler
// can never serve a selection computed on an older sample of the same
// size), and the DB's cached bounded executor reads fresh views per
// query instead of holding stale layer state.

// TestRecyclerDistinguishesImpressionVersions materialises the same
// impression at two versions with identical row counts and checks the
// recycler treats them as distinct tables — no stale selection reuse.
func TestRecyclerDistinguishesImpressionVersions(t *testing.T) {
	db := ingestFixture(t)
	im := db.Hierarchy("T").Layers()[0] // stream layer: full at cap, so
	// both versions materialise the same row count
	m1, err := im.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	rec, err := recycler.New(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	seq := engine.ExecOptions{Parallelism: 1}
	pred := expr.Cmp{Op: vec.Lt, Left: expr.ColRef{Name: "ra"}, Right: 0.5}
	sel1, _, err := rec.Filter(m1.Table, pred, seq)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := rec.Filter(m1.Table, pred, seq); err != nil {
		t.Fatal(err)
	}
	if s := rec.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("same-version refilter: %+v", s)
	}

	v1 := im.Version()
	if err := db.Load("T", ingestBatch(1)); err != nil {
		t.Fatal(err)
	}
	if im.Version() == v1 {
		t.Fatal("load did not bump the impression version")
	}
	m2, err := im.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if m2.Table == m1.Table {
		t.Fatal("materialise cache survived a version bump")
	}
	if m1.Table.Name() == m2.Table.Name() {
		t.Fatalf("both versions materialise as %q — recycler keys would alias", m1.Table.Name())
	}
	if m1.Table.Len() != m2.Table.Len() {
		t.Fatalf("fixture mismatch: the aliasing guard needs equal row counts, got %d vs %d",
			m1.Table.Len(), m2.Table.Len())
	}
	sel2, _, err := rec.Filter(m2.Table, pred, seq)
	if err != nil {
		t.Fatal(err)
	}
	if s := rec.Stats(); s.Hits != 1 || s.Misses != 2 || s.Entries != 2 {
		t.Fatalf("new version must miss, not hit: %+v", s)
	}
	// Both selections stay usable; the old one still describes v1.
	if len(sel1) == len(sel2) {
		same := true
		for i := range sel1 {
			if sel1[i] != sel2[i] {
				same = false
				break
			}
		}
		if same {
			t.Log("selections happen to coincide across versions (allowed, but suspicious for this fixture)")
		}
	}
}

// TestCachedBoundedExecutorSeesVersionBumps asserts the executor cached
// in the DB does not need rebuilding when the hierarchy moves: the same
// executor instance answers from the refreshed sample because it takes
// views per query.
func TestCachedBoundedExecutorSeesVersionBumps(t *testing.T) {
	db := ingestFixture(t)
	base, err := db.Table("T")
	if err != nil {
		t.Fatal(err)
	}
	ex1, err := db.boundedExecutor("T", base)
	if err != nil {
		t.Fatal(err)
	}
	const sql = "SELECT COUNT(*) AS c FROM T WITHIN ERROR 0.2 CONFIDENCE 0.95"
	r1, err := db.Exec(sql)
	if err != nil {
		t.Fatal(err)
	}
	before := r1.Bounded.Estimates[0].Value()

	// Grow the base by 3x: a COUNT(*) estimate from any layer must move
	// with it, through the *same* cached executor.
	for b := 1; b <= 30; b++ {
		if err := db.Load("T", ingestBatch(uint64(b))); err != nil {
			t.Fatal(err)
		}
	}
	ex2, err := db.boundedExecutor("T", base)
	if err != nil {
		t.Fatal(err)
	}
	if ex1 != ex2 {
		t.Fatal("executor cache rebuilt — the point is that it must NOT need rebuilding")
	}
	r2, err := db.Exec(sql)
	if err != nil {
		t.Fatal(err)
	}
	after := r2.Bounded.Estimates[0].Value()
	want := float64(ingestSeedRows + 30*ingestBatchRows)
	if after == before {
		t.Fatalf("estimate frozen at %v despite 3x growth", after)
	}
	if diff := after - want; diff > want/2 || diff < -want/2 {
		t.Fatalf("post-growth COUNT estimate %v too far from %v", after, want)
	}
}
