package sciborq

import (
	"math"
	"strings"
	"testing"

	"sciborq/internal/bounded"
	"sciborq/internal/engine"
	"sciborq/internal/estimate"
	"sciborq/internal/stats"
)

// Edge-case coverage for the public Result accessors: missing columns,
// NaN estimates, empty grouped results, and the empty Result itself.

func resultFixture(t *testing.T) *DB {
	t.Helper()
	db := Open(testCost())
	if _, err := db.CreateTable("T", Schema{
		{Name: "x", Type: Float64},
		{Name: "g", Type: Int64},
	}); err != nil {
		t.Fatal(err)
	}
	rows := []Row{}
	for i := 0; i < 20; i++ {
		rows = append(rows, Row{float64(i), int64(i % 3)})
	}
	if err := db.Load("T", rows); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestResultScalarMissingColumn(t *testing.T) {
	db := resultFixture(t)
	res, err := db.Exec("SELECT AVG(x) AS a FROM T")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Scalar("nope"); err == nil {
		t.Fatal("missing exact-result column did not error")
	}
	if v, err := res.Scalar("a"); err != nil || v != 9.5 {
		t.Fatalf("Scalar(a) = %v, %v", v, err)
	}
	// Bounded results miss by aggregate name, not column.
	bres, err := db.Exec("SELECT AVG(x) AS a FROM T WITHIN ERROR 0.5 CONFIDENCE 0.9")
	if err != nil {
		t.Fatal(err)
	}
	if bres.Bounded == nil {
		t.Fatal("expected a bounded answer")
	}
	if _, err := bres.Scalar("nope"); err == nil {
		t.Fatal("missing bounded aggregate did not error")
	}
	if _, err := bres.Scalar("a"); err != nil {
		t.Fatal(err)
	}
}

func TestResultScalarEmptyAndGrouped(t *testing.T) {
	db := resultFixture(t)
	// Empty grouped result: the predicate matches nothing, so the
	// grouped table has zero rows — Scalar must refuse (needs exactly
	// one row) and String must render the header without panicking.
	res, err := db.Exec("SELECT COUNT(*) AS c FROM T WHERE x < -5 GROUP BY g")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows == nil || res.Rows.Len() != 0 {
		t.Fatalf("expected empty grouped result, got %+v", res.Rows)
	}
	if _, err := res.Scalar("c"); err == nil {
		t.Fatal("Scalar on a zero-row grouped result did not error")
	}
	s := res.String()
	if !strings.Contains(s, "g") || !strings.Contains(s, "c") {
		t.Fatalf("empty grouped String lost the header: %q", s)
	}
	// Multi-group results also refuse Scalar (ambiguous row).
	grouped, err := db.Exec("SELECT COUNT(*) AS c FROM T GROUP BY g")
	if err != nil {
		t.Fatal(err)
	}
	if grouped.Rows.Len() != 3 {
		t.Fatalf("want 3 groups, got %d", grouped.Rows.Len())
	}
	if _, err := grouped.Scalar("c"); err == nil {
		t.Fatal("Scalar on a multi-row grouped result did not error")
	}
	// The zero Result renders and errors gracefully.
	var empty Result
	if got := empty.String(); got != "(empty)" {
		t.Fatalf("empty String = %q", got)
	}
	if _, err := empty.Scalar("c"); err == nil {
		t.Fatal("empty Result Scalar did not error")
	}
	if empty.Estimates() != nil {
		t.Fatal("empty Result claims estimates")
	}
}

func TestResultStringNaNEstimates(t *testing.T) {
	// A bounded answer whose estimate is NaN with an infinite interval —
	// the shape an empty sample produces — must render, not panic, and
	// Scalar must surface the NaN value rather than inventing a number.
	nanResult := &Result{
		Bounded: &bounded.Answer{
			Layer: "T/L0",
			Estimates: []estimate.Estimate{{
				Spec:     engine.AggSpec{Func: engine.Avg, Alias: "a"},
				Interval: stats.Interval{Estimate: math.NaN(), HalfWidth: math.Inf(1), Level: 0.95},
			}},
		},
	}
	s := nanResult.String()
	if !strings.Contains(s, "NaN") {
		t.Fatalf("NaN estimate not rendered: %q", s)
	}
	v, err := nanResult.Scalar("a")
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(v) {
		t.Fatalf("Scalar(a) = %v, want NaN", v)
	}
	// An end-to-end empty-selection bounded query reaches the same shape.
	db := resultFixture(t)
	res, err := db.Exec("SELECT AVG(x) AS a FROM T WHERE x < -5 WITHIN ERROR 0.5")
	if err != nil {
		t.Fatal(err)
	}
	if res.String() == "" {
		t.Fatal("empty-selection bounded result rendered nothing")
	}
}
