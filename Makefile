# Mirrors .github/workflows/ci.yml: a green `make ci` locally means a
# green pipeline.

GO ?= go

.PHONY: all build test race bench bench-json fmt vet ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the packages with concurrent execution paths
# (the morsel worker pool and the bounded executor built on it).
race:
	$(GO) test -race ./internal/engine/... ./internal/bounded/... .

# One-iteration benchmark smoke: fails loudly if the hot scan path
# regresses to an error, without paying full benchmark time.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# Machine-readable record of the scan-path benchmarks (test2json
# stream): the perf trajectory one point per PR. Commit the refreshed
# BENCH_scan.json alongside scan-path changes.
bench-json:
	$(GO) test -json -run='^$$' -benchmem -benchtime=5x \
		-bench='^(BenchmarkSelectiveFilterSweep|BenchmarkZoneMapPruning|BenchmarkParallelFilteredAgg)$$' \
		. > BENCH_scan.json

fmt:
	@diff=$$(gofmt -l .); \
	if [ -n "$$diff" ]; then \
		echo "gofmt needed on:" >&2; \
		echo "$$diff" >&2; \
		exit 1; \
	fi

vet:
	$(GO) vet ./...

ci: build vet fmt test race bench
