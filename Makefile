# Mirrors .github/workflows/ci.yml: a green `make ci` locally means a
# green pipeline.

GO ?= go

.PHONY: all build test cover race bench bench-json bench-alloc chaos crash fuzz fmt vet ci server server-smoke

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Coverage profile over every package; CI uploads coverage.out as an
# artifact.
cover:
	$(GO) test -coverprofile=coverage.out ./...

# Race-detector pass over the packages with concurrent execution paths
# (the morsel worker pool, the bounded executor built on it, the
# pooled hash infrastructure shared across scan workers, the impression
# views read by queries while loads mutate the samplers, the shared
# recycler + the expr scratch-pool kernels it drives, the plan cache
# hit/evicted/invalidated concurrently by queries and loads, the HTTP
# server whose admission queue and tenant counters every request
# pounds, and the durable segment store whose granule cache is touched
# by scans while loads fold batches).
race:
	$(GO) test -race ./internal/engine/... ./internal/bounded/... ./internal/hashtab/... ./internal/impression/... ./internal/recycler/... ./internal/expr/... ./internal/server/... ./internal/plancache/... ./internal/wire/... ./internal/segment/... .

# Crash-recovery suite under the race detector: the segment store's
# WAL/torn-tail/fault-injection property tests, the DB-level restart
# and crash-without-Close recovery tests, and the daemon's -data-dir
# restart acceptance.
crash:
	$(GO) test -race -v ./internal/segment/...
	$(GO) test -race -run='^TestDurable' -v .
	$(GO) test -race -run='^TestRestartRecoversDataDir$$' -v ./cmd/sciborqd

# Short fuzz smoke over the SQL front-end (Parse never panics and
# accepted statements round-trip through Statement.String) and the wire
# protocol (frame/page decoders never panic on arbitrary bytes, and
# decoded frames re-encode losslessly).
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=10s ./internal/sqlparse
	$(GO) test -run='^$$' -fuzz='^FuzzFrame$$' -fuzztime=10s ./internal/wire
	$(GO) test -run='^$$' -fuzz='^FuzzFrameStream$$' -fuzztime=10s ./internal/wire

# One-iteration benchmark smoke: fails loudly if the hot scan path
# regresses to an error, without paying full benchmark time.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# Machine-readable record of the scan-path and hash-path benchmarks
# (test2json streams): the perf trajectory one point per PR. Commit the
# refreshed BENCH_scan.json / BENCH_hash.json alongside changes to the
# respective paths. The hash benchmarks carry their own map-based
# reference arms (*/mapref), so BENCH_hash.json always contains the
# flat-vs-map comparison measured on the same machine.
bench-json:
	$(GO) test -json -run='^$$' -benchmem -benchtime=5x \
		-bench='^(BenchmarkSelectiveFilterSweep|BenchmarkZoneMapPruning|BenchmarkParallelFilteredAgg)$$' \
		. > BENCH_scan.json
	$(GO) test -json -run='^$$' -benchmem -benchtime=5x \
		-bench='^(BenchmarkGroupByHash|BenchmarkHashJoinProbe|BenchmarkHashJoinBuild|BenchmarkHashJoinEngine)$$' \
		. > BENCH_hash.json
	$(GO) test -json -run='^$$' -benchmem -benchtime=5x \
		-bench='^BenchmarkBoundedQuery$$' \
		. > BENCH_impression.json
	$(GO) test -json -run='^$$' -benchmem -benchtime=5x \
		-bench='^BenchmarkRecyclerRepeatedQuery$$' \
		. > BENCH_recycler.json
	$(GO) test -json -run='^$$' -benchmem -benchtime=5x \
		-bench='^(BenchmarkParseCold|BenchmarkPlanCacheWarmHit|BenchmarkPlanCacheShapeBind|BenchmarkExecPlanCache)$$' \
		. > BENCH_parse.json
	$(GO) test -json -run='^$$' -benchmem -benchtime=5x \
		-bench='^BenchmarkPanicGuardOverhead$$' \
		./internal/engine > BENCH_resilience.json
	$(GO) test -json -run='^$$' -benchmem -benchtime=5x \
		-bench='^(BenchmarkWireEncode|BenchmarkJSONEncode|BenchmarkWireStream)$$' \
		./internal/wire > BENCH_wire.json
	$(GO) test -json -run='^$$' -benchmem -benchtime=5x \
		-bench='^BenchmarkSegmentScan$$' \
		./internal/segment > BENCH_storage.json

# Allocation regression gate for the cached-statement front end: a warm
# plan-cache hit (alias probe + catalog version check) must stay at
# exactly 0 allocs/op, asserted via testing.AllocsPerRun at both the
# package level (plancache.TestLookupZeroAlloc) and end to end through
# DB.CheckSQL (TestFrontEndZeroAlloc).
bench-alloc:
	$(GO) test -run='ZeroAlloc' -v . ./internal/plancache/...

# Seeded, deterministic chaos suite under the race detector: >=100
# injected faults (errors, panics, latency) across all six fault points
# against a booted server with concurrent clients and ingest — over both
# the HTTP and binary wire transports — plus the daemon's SIGTERM drain
# test. A failure replays from the seed printed in the test log.
chaos:
	$(GO) test -race -run='^(TestChaos|TestChaosWire|TestGracefulDrainOnSIGTERM)$$' -v ./internal/server ./internal/wire ./cmd/sciborqd

# Run the HTTP/JSON query server on :8080 over synthetic SkyServer data.
server:
	$(GO) run ./cmd/sciborqd

# Boot sciborqd and execute every curl example in docs/SERVER.md
# verbatim against it (the docs-cannot-rot check; see the CI job).
server-smoke:
	./scripts/server_smoke.sh

fmt:
	@diff=$$(gofmt -l .); \
	if [ -n "$$diff" ]; then \
		echo "gofmt needed on:" >&2; \
		echo "$$diff" >&2; \
		exit 1; \
	fi

vet:
	$(GO) vet ./...

ci: build vet fmt test race bench bench-alloc chaos crash fuzz
