module sciborq

go 1.24
