package sciborq

import (
	"fmt"
	"testing"

	"sciborq/internal/sqlparse"
	"sciborq/internal/xrand"
)

// Front-end benchmarks: the cost of turning SQL text into an executable
// plan, cold and cached. The companion numbers live in BENCH_parse.json
// (refresh via `make bench-json`); the acceptance bar is that the warm
// plan-cache hit is <5% of the ~138µs warm recycler hit measured by
// BenchmarkRecyclerRepeatedQuery/repeat/warm.

const parseBenchSQL = "SELECT COUNT(*), AVG(r) AS m FROM T WHERE ra BETWEEN 10 AND 14 AND dec > 20 LIMIT 100"

// BenchmarkParseCold is the no-cache baseline: a full lex + parse of a
// representative SkyServer statement every iteration.
func BenchmarkParseCold(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sqlparse.Parse(parseBenchSQL); err != nil {
			b.Fatal(err)
		}
	}
}

// parseBenchDB builds a small loaded DB so plan admission runs against
// a real catalog identity (table ID + version), not a stub.
func parseBenchDB(b *testing.B, extra ...Option) *DB {
	b.Helper()
	opts := append([]Option{testCost()}, extra...)
	db := Open(opts...)
	if _, err := db.CreateTable("T", Schema{
		{Name: "ra", Type: Float64},
		{Name: "dec", Type: Float64},
		{Name: "r", Type: Float64},
	}); err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(42)
	rows := make([]Row, 1024)
	for i := range rows {
		rows[i] = Row{rng.Float64() * 360, rng.Float64()*180 - 90, rng.Float64() * 30}
	}
	if err := db.Load("T", rows); err != nil {
		b.Fatal(err)
	}
	return db
}

// BenchmarkPlanCacheWarmHit measures the cached-statement front end in
// isolation: an alias-tier lookup (map probe + identity check + LRU
// stamp) replacing the cold parse entirely. This is the path asserted
// allocation-free by TestFrontEndZeroAlloc / `make bench-alloc`.
func BenchmarkPlanCacheWarmHit(b *testing.B) {
	db := parseBenchDB(b)
	if _, err := db.Exec(parseBenchSQL); err != nil {
		b.Fatal(err)
	}
	db.plans.Lookup("", parseBenchSQL) // warm the tenant counter block
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if db.plans.Lookup("", parseBenchSQL) == nil {
			b.Fatal("unexpected plan-cache miss")
		}
	}
}

// BenchmarkPlanCacheShapeBind measures the literal-rebinding tier: the
// statement differs from the cached one only in literal values, so the
// front end fingerprints it and replays the cached template instead of
// planning from scratch.
func BenchmarkPlanCacheShapeBind(b *testing.B) {
	db := parseBenchDB(b)
	if _, err := db.Exec(parseBenchSQL); err != nil {
		b.Fatal(err)
	}
	variants := make([]string, 16)
	for i := range variants {
		variants[i] = fmt.Sprintf(
			"SELECT COUNT(*), AVG(r) AS m FROM T WHERE ra BETWEEN %d AND %d AND dec > %d LIMIT 100",
			i, i+4, i+15)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := db.plans.BindShape("", variants[i%len(variants)]); !ok {
			b.Fatal("literal variant did not bind against the cached shape")
		}
	}
}

// BenchmarkExecPlanCache is the end-to-end comparison over the same
// 1M-row base as BenchmarkRecyclerRepeatedQuery: the identical repeated
// statement through a DB with the plan cache ("cached", alias-tier hit
// feeding a warm recycler hit) and one with it disabled ("uncached",
// full parse + canonicalisation every iteration). Both arms keep the
// recycler, so the difference isolates the front end.
func BenchmarkExecPlanCache(b *testing.B) {
	const rows = 1_000_000
	load := func(db *DB) {
		b.Helper()
		if _, err := db.CreateTable("T", Schema{
			{Name: "ra", Type: Float64},
			{Name: "dec", Type: Float64},
			{Name: "r", Type: Float64},
		}); err != nil {
			b.Fatal(err)
		}
		rng := xrand.New(42)
		const batch = 65536
		rowsBuf := make([]Row, 0, batch)
		for i := 0; i < rows; i++ {
			rowsBuf = append(rowsBuf, Row{
				rng.Float64() * 360,
				rng.Float64()*180 - 90,
				rng.Float64() * 30,
			})
			if len(rowsBuf) == batch || i == rows-1 {
				if err := db.Load("T", rowsBuf); err != nil {
					b.Fatal(err)
				}
				rowsBuf = rowsBuf[:0]
			}
		}
	}
	const repeatSQL = "SELECT AVG(r) AS v FROM T WHERE ra BETWEEN 10 AND 14"

	dbs := map[string]*DB{
		"cached":   Open(testCost()),
		"uncached": Open(testCost(), WithPlanCacheBudget(-1)),
	}
	for _, db := range dbs {
		load(db)
	}

	for _, arm := range []string{"cached", "uncached"} {
		db := dbs[arm]
		b.Run(arm, func(b *testing.B) {
			if _, err := db.Exec(repeatSQL); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := db.Exec(repeatSQL)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := res.Scalar("v"); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if arm == "cached" {
				st := db.PlanCacheStats()
				b.ReportMetric(st.HitRate(), "hitrate")
			}
		})
	}
}

// TestFrontEndZeroAlloc is the end-to-end half of the allocation gate
// (`make bench-alloc`; the package-local half is
// plancache.TestLookupZeroAlloc): once a statement's plan is cached,
// re-validating that exact spelling — the alias probe plus the
// catalog-backed table-version check — must allocate zero bytes.
func TestFrontEndZeroAlloc(t *testing.T) {
	db := Open(testCost())
	if _, err := db.CreateTable("T", Schema{{Name: "ra", Type: Float64}}); err != nil {
		t.Fatal(err)
	}
	if err := db.Load("T", []Row{{1.0}, {2.0}, {3.0}}); err != nil {
		t.Fatal(err)
	}
	const sql = "SELECT COUNT(*) AS c FROM T WHERE ra > 1"
	if _, err := db.Exec(sql); err != nil { // cold: parse + admit
		t.Fatal(err)
	}
	if err := db.CheckSQL(sql); err != nil { // warm the tenant counter block
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if err := db.CheckSQL(sql); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("cached-statement front end allocates %v objects/op, want 0", allocs)
	}
}
