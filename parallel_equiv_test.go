package sciborq

import (
	"testing"

	"sciborq/internal/engine"
	"sciborq/internal/skyserver"
)

// equivDB builds a deterministic SkyServer-loaded DB at the given
// parallelism. Identical seeds everywhere, so any result divergence
// between two instances can only come from the executor. extra options
// (e.g. WithPlanCacheBudget) apply on top.
func equivDB(t *testing.T, workers int, extra ...Option) *DB {
	t.Helper()
	opts := []Option{
		WithCostModel(engine.CostModel{NsPerRow: 15, FixedNs: 5000}),
		WithSeed(42),
		WithExecOptions(engine.ExecOptions{Parallelism: workers, MorselRows: 4096}),
	}
	opts = append(opts, extra...)
	db := Open(opts...)
	sky, err := skyserver.New(skyserver.DefaultConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	fact, err := sky.Catalog.Get("PhotoObjAll")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AttachTable(fact); err != nil {
		t.Fatal(err)
	}
	if err := db.BuildImpressions("PhotoObjAll", ImpressionConfig{
		Sizes: []int{4000, 400}, Policy: Uniform,
	}); err != nil {
		t.Fatal(err)
	}
	gen := sky.Generator(nil)
	if err := db.Load("PhotoObjAll", gen.NextBatch(40_000)); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestExecParallelSequentialEquivalence runs exact SQL through two DBs
// that differ only in parallelism and requires identical rendered
// results (String() is exact for identical floating-point bits).
func TestExecParallelSequentialEquivalence(t *testing.T) {
	seqDB := equivDB(t, 1)
	parDB := equivDB(t, 4)
	queries := []string{
		"SELECT COUNT(*) FROM PhotoObjAll",
		"SELECT COUNT(*), AVG(r) AS m, SUM(r) AS s FROM PhotoObjAll WHERE ra BETWEEN 150 AND 180",
		"SELECT MIN(r) AS lo, MAX(r) AS hi FROM PhotoObjAll WHERE dec > 10",
		"SELECT AVG(r) AS m FROM PhotoObjAll WHERE type = 'GALAXY'",
		"SELECT COUNT(*), AVG(r) AS m FROM PhotoObjAll WHERE ra BETWEEN 120 AND 240 GROUP BY type",
		"SELECT objID, ra FROM PhotoObjAll WHERE ra BETWEEN 170 AND 171 ORDER BY ra LIMIT 25",
	}
	for _, sql := range queries {
		seq, err := seqDB.Exec(sql)
		if err != nil {
			t.Fatalf("sequential %q: %v", sql, err)
		}
		par, err := parDB.Exec(sql)
		if err != nil {
			t.Fatalf("parallel %q: %v", sql, err)
		}
		if seq.String() != par.String() {
			t.Errorf("%q diverged:\nsequential:\n%s\nparallel:\n%s", sql, seq, par)
		}
	}
}

// TestErrorBoundedParallelSequentialEquivalence runs a WITHIN ERROR
// query on both DBs; impression layers are seed-identical, so the
// bounded estimates must match exactly too.
func TestErrorBoundedParallelSequentialEquivalence(t *testing.T) {
	seqDB := equivDB(t, 1)
	parDB := equivDB(t, 4)
	const sql = "SELECT AVG(r) AS m FROM PhotoObjAll WHERE ra BETWEEN 120 AND 240 WITHIN ERROR 0.2"
	seq, err := seqDB.Exec(sql)
	if err != nil {
		t.Fatal(err)
	}
	par, err := parDB.Exec(sql)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Bounded == nil || par.Bounded == nil {
		t.Fatal("expected bounded answers")
	}
	if seq.Bounded.Layer != par.Bounded.Layer {
		t.Fatalf("layer diverged: %s vs %s", seq.Bounded.Layer, par.Bounded.Layer)
	}
	sv, err := seq.Scalar("m")
	if err != nil {
		t.Fatal(err)
	}
	pv, err := par.Scalar("m")
	if err != nil {
		t.Fatal(err)
	}
	if sv != pv {
		t.Fatalf("bounded estimate diverged: %v vs %v", sv, pv)
	}
}

// TestWithParallelismOption pins the façade default (parallel on) and
// the option plumbing.
func TestWithParallelismOption(t *testing.T) {
	db := Open(WithCostModel(engine.CostModel{NsPerRow: 15, FixedNs: 5000}))
	if got := db.ExecOptions().Parallelism; got != 0 {
		t.Fatalf("default Parallelism = %d, want 0 (= GOMAXPROCS)", got)
	}
	db = Open(
		WithCostModel(engine.CostModel{NsPerRow: 15, FixedNs: 5000}),
		WithParallelism(3),
	)
	if got := db.ExecOptions().Parallelism; got != 3 {
		t.Fatalf("WithParallelism(3) → %d", got)
	}
}
