package sciborq

import (
	"fmt"
	"testing"

	"sciborq/internal/xrand"
)

// BenchmarkRecyclerRepeatedQuery measures the recycler on the dominant
// SkyServer access pattern: the same exploration predicate issued over
// and over ("repeat"), and a progressively refined one — p AND q after
// p, the scientist zooming in ("refine", a fresh predicate every
// iteration, so only subsumption can help). Each shape runs two
// permanent arms over the identical 1M-row base: "warm" through a DB
// with the default recycler, "cold" through a DB with the recycler
// disabled (WithRecyclerBudget(0)) — the retired always-rescan path,
// kept so the comparison regenerates on any machine. The filter column
// is unclustered (shuffled values), the honest regime where zone maps
// cannot rescue the cold scan.
func BenchmarkRecyclerRepeatedQuery(b *testing.B) {
	const rows = 1_000_000
	load := func(db *DB) {
		b.Helper()
		if _, err := db.CreateTable("T", Schema{
			{Name: "ra", Type: Float64},
			{Name: "dec", Type: Float64},
			{Name: "r", Type: Float64},
		}); err != nil {
			b.Fatal(err)
		}
		rng := xrand.New(42)
		const batch = 65536
		rowsBuf := make([]Row, 0, batch)
		for i := 0; i < rows; i++ {
			rowsBuf = append(rowsBuf, Row{
				rng.Float64() * 360,
				rng.Float64()*180 - 90,
				rng.Float64() * 30,
			})
			if len(rowsBuf) == batch || i == rows-1 {
				if err := db.Load("T", rowsBuf); err != nil {
					b.Fatal(err)
				}
				rowsBuf = rowsBuf[:0]
			}
		}
	}
	// ~1.1% selectivity (a 4-degree ra band): the cached selection is
	// ~11K positions (~44KB), well inside the default budget's admission
	// bound, and the focal-area shape of the SkyServer workload.
	const repeatSQL = "SELECT AVG(r) AS v FROM T WHERE ra BETWEEN 10 AND 14"
	refineSQL := func(i int) string {
		// A fresh lower dec cut each iteration: never an exact hit, always
		// subsumed by the cached BETWEEN entry.
		return fmt.Sprintf("SELECT AVG(r) AS v FROM T WHERE ra BETWEEN 10 AND 14 AND dec > %d", -80+i%160)
	}

	dbs := map[string]*DB{
		"warm": Open(testCost()),
		"cold": Open(testCost(), WithRecyclerBudget(0)),
	}
	for _, db := range dbs {
		load(db)
	}

	for _, shape := range []string{"repeat", "refine"} {
		for _, arm := range []string{"warm", "cold"} {
			db := dbs[arm]
			b.Run(shape+"/"+arm, func(b *testing.B) {
				// Prime the base entry so the warm arm measures steady
				// state (hit for repeat, subsumption for refine); the cold
				// arm has no cache, so priming is a no-op there.
				if _, err := db.Exec(repeatSQL); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sql := repeatSQL
					if shape == "refine" {
						sql = refineSQL(i)
					}
					res, err := db.Exec(sql)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := res.Scalar("v"); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				if arm == "warm" {
					st := db.RecyclerStats()
					b.ReportMetric(st.HitRate(), "hitrate")
				}
			})
		}
	}
}
