package sciborq

import (
	"context"
	"fmt"
	"strings"
	"time"

	"sciborq/internal/bounded"
	"sciborq/internal/engine"
	"sciborq/internal/estimate"
	"sciborq/internal/recycler"
	"sciborq/internal/sqlparse"
	"sciborq/internal/table"
	"sciborq/internal/vec"
)

// Result is the uniform answer of DB.Exec: either an exact relational
// result or a bounded estimate with confidence intervals.
type Result struct {
	// Rows is the materialised result for exact (unbounded) queries;
	// nil for bounded answers.
	Rows *engine.Result
	// Bounded is the layered answer for bounded queries; nil otherwise.
	Bounded *bounded.Answer
	// Elapsed is the wall-clock execution time.
	Elapsed time.Duration
	// SQL is the executed statement.
	SQL string
}

// Estimates returns the per-aggregate estimates of a bounded answer.
func (r *Result) Estimates() []estimate.Estimate {
	if r.Bounded == nil {
		return nil
	}
	return r.Bounded.Estimates
}

// Scalar returns a single aggregate value by output column name,
// regardless of whether the result is exact or bounded.
func (r *Result) Scalar(name string) (float64, error) {
	if r.Rows != nil {
		return r.Rows.Scalar(name)
	}
	if r.Bounded != nil {
		for _, e := range r.Bounded.Estimates {
			if e.Spec.Name() == name {
				return e.Value(), nil
			}
		}
		return 0, fmt.Errorf("sciborq: no aggregate %q in bounded answer", name)
	}
	return 0, fmt.Errorf("sciborq: empty result")
}

// String renders a compact human-readable summary.
func (r *Result) String() string {
	var b strings.Builder
	if r.Bounded != nil {
		fmt.Fprintf(&b, "layer=%s exact=%t bound_met=%t elapsed=%v\n",
			r.Bounded.Layer, r.Bounded.Exact, r.Bounded.BoundMet, r.Elapsed)
		for _, e := range r.Bounded.Estimates {
			if e.Exact {
				fmt.Fprintf(&b, "  %s = %.6g (exact)\n", e.Spec.Name(), e.Value())
			} else {
				fmt.Fprintf(&b, "  %s = %.6g ± %.3g (%.0f%% conf, rel err %.2g%%)\n",
					e.Spec.Name(), e.Value(), e.Interval.HalfWidth,
					e.Interval.Level*100, e.RelError()*100)
			}
		}
		return b.String()
	}
	if r.Rows != nil {
		names := r.Rows.Table.Schema().Names()
		fmt.Fprintf(&b, "%s\n", strings.Join(names, "\t"))
		n := r.Rows.Len()
		const maxShow = 20
		for i := 0; i < n && i < maxShow; i++ {
			fmt.Fprintf(&b, "%s\n", strings.Join(r.Rows.Table.RowStrings(int32(i)), "\t"))
		}
		if n > maxShow {
			fmt.Fprintf(&b, "... (%d rows)\n", n)
		}
		return b.String()
	}
	return "(empty)"
}

// Exec parses and executes one SQL statement. Predicates are logged to
// the table's workload logger (steering future impressions); bounded
// aggregate statements run through the layer-escalation executor, other
// statements run exactly on base data.
func (db *DB) Exec(sql string) (*Result, error) {
	return db.ExecContext(context.Background(), sql)
}

// ExecContext is Exec with a per-query context: cancelling it (client
// disconnect, deadline) aborts the underlying morsel scans
// cooperatively, freeing the worker pool within one morsel boundary and
// returning ctx.Err().
func (db *DB) ExecContext(ctx context.Context, sql string) (*Result, error) {
	return db.ExecTenant(ctx, "", sql)
}

// ExecTenant is ExecContext on behalf of a named tenant: the query's
// WHERE selection is cached in (and served from) the tenant's own
// recycler partition, so concurrent tenants cannot evict each other's
// warm working sets. The empty tenant uses the shared default
// partition, making ExecTenant(ctx, "", sql) ≡ ExecContext(ctx, sql).
//
// The statement runs through the plan cache first: a repeated spelling
// skips the whole front end (parse, canonicalisation, predicate key
// encoding) with zero allocation, a literal variant of a cached shape
// replays only its literal values, and only genuinely new statements
// pay a full parse. Results are bit-identical on every path — the plan
// holds exactly the Statement a fresh parse would produce.
func (db *DB) ExecTenant(ctx context.Context, tenant, sql string) (*Result, error) {
	if db.plans != nil {
		if pl := db.plans.Lookup(tenant, sql); pl != nil {
			return db.execStatement(ctx, tenant, pl.Statement, sql, &pl.Prep)
		}
		if st, ok := db.plans.BindShape(tenant, sql); ok {
			return db.execParsed(ctx, tenant, st, sql, true)
		}
	}
	st, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	if db.plans == nil {
		return db.execStatement(ctx, tenant, st, sql, nil)
	}
	return db.execParsed(ctx, tenant, st, sql, false)
}

// execParsed admits a plan for a freshly parsed (or shape-bound)
// statement, then executes it with the plan's prepared predicate.
func (db *DB) execParsed(ctx context.Context, tenant string, st *sqlparse.Statement, sql string, shapeHit bool) (*Result, error) {
	base, err := db.catalog.Get(st.Query.Table)
	if err != nil {
		return nil, err
	}
	pl := db.plans.Admit(tenant, sql, st, base.ID(), base.Version(), shapeHit)
	return db.execStatement(ctx, tenant, pl.Statement, sql, &pl.Prep)
}

// ExecStatement executes a pre-parsed statement.
func (db *DB) ExecStatement(st *sqlparse.Statement, sql string) (*Result, error) {
	return db.execStatement(context.Background(), "", st, sql, nil)
}

// ExecStatementTenant executes a pre-parsed statement for a tenant,
// bypassing the plan cache entirely. This is the execution path for
// wire-protocol prepared statements re-bound with fresh literals: the
// rebound AST must not be admitted to the cache under the statement's
// representative SQL spelling, or the alias tier would replay the wrong
// literals for every later client sending that exact text.
func (db *DB) ExecStatementTenant(ctx context.Context, tenant string, st *sqlparse.Statement, sql string) (*Result, error) {
	return db.execStatement(ctx, tenant, st, sql, nil)
}

// execStatement executes a pre-parsed statement for a tenant under ctx.
// prep, when non-nil, carries the plan cache's canonicalised WHERE
// predicate so the recycler path skips canonicalisation; nil means the
// recycler prepares it per query.
func (db *DB) execStatement(ctx context.Context, tenant string, st *sqlparse.Statement, sql string, prep *recycler.Prepared) (*Result, error) {
	base, err := db.catalog.Get(st.Query.Table)
	if err != nil {
		return nil, err
	}
	// Log the query's predicate set — this is how SciBORQ adapts
	// impressions to the shifting focal point (§3.1, §4).
	if lg := db.Logger(st.Query.Table); lg != nil {
		lg.LogQuery(st.Query.Where)
	}
	opts := db.opts
	opts.Ctx = ctx
	start := time.Now()
	bounds := st.Bounds
	wantsBound := bounds.HasErrorBound() || bounds.HasTimeBound()
	if wantsBound && len(st.Query.Aggs) > 0 && st.Query.GroupBy == "" {
		ex, err := db.boundedExecutor(st.Query.Table, base)
		if err != nil {
			return nil, err
		}
		ans, err := ex.RunWith(ctx, st, db.recyclerFor(tenant))
		if err != nil {
			return nil, err
		}
		return &Result{Bounded: ans, Elapsed: time.Since(start), SQL: sql}, nil
	}
	// Exact execution path; bounded non-aggregate queries degrade to a
	// time-bounded LIMIT against the best-fitting layer.
	if wantsBound && len(st.Query.Aggs) == 0 {
		res, err := db.boundedProjection(base, st, opts)
		if err != nil {
			return nil, err
		}
		return &Result{Rows: res, Elapsed: time.Since(start), SQL: sql}, nil
	}
	res, err := db.runExact(base, st.Query, opts, db.recyclerFor(tenant), prep)
	if err != nil {
		return nil, err
	}
	return &Result{Rows: res, Elapsed: time.Since(start), SQL: sql}, nil
}

// runExact evaluates an unbounded query, serving the WHERE selection
// through the tenant's recycler partition: a repeated predicate skips
// its scan entirely, and a refined one (p AND q after p) filters only
// the cached superset selection. The query then executes over the same
// snapshot the selection describes via the prefiltered engine path,
// whose morsel merge layout makes results bit-identical to an uncached
// scan. WHERE-less queries and a disabled recycler take the plain path.
// opts carries the per-query context. prep, when non-nil, is the plan
// cache's pre-canonicalised predicate (FilterPrepared re-prepares
// internally if a load raced past the plan's version).
func (db *DB) runExact(base *table.Table, q engine.Query, opts engine.ExecOptions, rec *recycler.Recycler, prep *recycler.Prepared) (*engine.Result, error) {
	if rec == nil || q.Where == nil {
		return engine.RunOnOpts(base, q, opts)
	}
	snap := base.Snapshot()
	if len(q.Aggs) > 0 {
		// The fused aggregate path never materialises a selection, so
		// routing through the recycler only pays off if the result can
		// actually be cached. The post-pruning scanned-row count bounds
		// the match count from above; when even that bound is
		// inadmissible, stay on the fused path instead of building (and
		// then rejecting) a huge selection every query. Projections
		// materialise the selection either way, so they always route.
		if upper := engine.EstimateScanRows(snap, q.Pred(), opts); !rec.Admissible(upper) {
			return engine.RunOnOpts(snap, q, opts)
		}
	}
	var (
		sel  vec.Sel
		scan engine.ScanStats
		err  error
	)
	if prep != nil {
		sel, scan, err = rec.FilterPrepared(snap, prep, opts)
	} else {
		sel, scan, err = rec.Filter(snap, q.Where, opts)
	}
	if err != nil {
		return nil, err
	}
	if sel == nil {
		// TRUE-equivalent predicate: nothing to reuse, scan normally.
		return engine.RunOnOpts(snap, q, opts)
	}
	return engine.RunOnFilteredOpts(snap, sel, q, scan, opts)
}

// boundedExecutor returns the cached bounded executor for a table; the
// cache keeps the executor's learned cost model alive across queries.
func (db *DB) boundedExecutor(name string, base *table.Table) (*bounded.Executor, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if ex, ok := db.execs[name]; ok {
		return ex, nil
	}
	ex, err := bounded.NewExecutorOpts(base, db.hiers[name], db.cost, db.opts)
	if err != nil {
		return nil, err
	}
	if db.recPool != nil {
		// Fallback partition for direct Run calls; ExecTenant overrides
		// per query with the tenant's own partition.
		ex.UseRecycler(db.recPool.Default())
	}
	if db.loadProbe != nil {
		ex.SetLoadProbe(db.loadProbe)
	}
	if db.gov != nil {
		ex.SetMemoryProbe(db.gov.DegradeFactor)
	}
	db.execs[name] = ex
	return ex, nil
}

// boundedProjection answers a projection query under a time bound by
// running it against the largest impression layer that fits the budget —
// the paper's replacement for LIMIT-N: "the equivalent query with a
// LIMIT 100 clause will not return the first 100 results, but the 100
// results satisfying the impression" (§3.2). The layer executes as a
// selection-vector scan over a base snapshot (engine.RunOnSelOpts), so
// only the rows that survive the predicate are ever copied — the
// impression itself is never materialised.
func (db *DB) boundedProjection(base *table.Table, st *sqlparse.Statement, opts engine.ExecOptions) (*engine.Result, error) {
	h := db.Hierarchy(st.Query.Table)
	if h != nil && st.Bounds.HasTimeBound() {
		maxRows := db.cost.MaxRowsWithin(st.Bounds.MaxTime)
		if im, ok := h.LargestWithin(maxRows); ok {
			snap := base.Snapshot()
			v := im.View().Clamp(snap.Len())
			return engine.RunOnSelOpts(snap, v.Positions, st.Query, opts)
		}
	}
	return engine.RunOnOpts(base, st.Query, opts)
}
