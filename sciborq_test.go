package sciborq

import (
	"math"
	"strings"
	"testing"

	"sciborq/internal/engine"
	"sciborq/internal/skyserver"
	"sciborq/internal/table"
)

// testCost avoids per-test calibration runs.
func testCost() Option {
	return WithCostModel(engine.CostModel{NsPerRow: 10, FixedNs: 1000})
}

// openSky builds a DB with a generated catalogue, workload tracking and
// a 3-layer hierarchy.
func openSky(t *testing.T, objects int, policy Policy) *DB {
	t.Helper()
	db := Open(testCost(), WithSeed(42))
	sky, err := skyserver.Generate(skyserver.DefaultConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AttachTable(sky.PhotoObjAll); err != nil {
		t.Fatal(err)
	}
	if err := db.AttachTable(sky.Field); err != nil {
		t.Fatal(err)
	}
	if err := db.TrackWorkload("PhotoObjAll",
		Attr{Name: "ra", Min: 120, Max: 240, Beta: 30},
		Attr{Name: "dec", Min: 0, Max: 60, Beta: 30},
	); err != nil {
		t.Fatal(err)
	}
	attrs := []string{"ra", "dec"}
	if policy != Biased {
		attrs = nil
	}
	if err := db.BuildImpressions("PhotoObjAll", ImpressionConfig{
		Sizes:  []int{objects / 10, objects / 100},
		Policy: policy,
		Attrs:  attrs,
		K:      500, D: 1000,
	}); err != nil {
		t.Fatal(err)
	}
	// Load in nightly batches through the DB so impressions build.
	gen := sky.Generator(nil)
	for loaded := 0; loaded < objects; loaded += 5000 {
		n := 5000
		if objects-loaded < n {
			n = objects - loaded
		}
		if err := db.Load("PhotoObjAll", gen.NextBatch(n)); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestCreateTableAndTables(t *testing.T) {
	db := Open(testCost())
	_, err := db.CreateTable("t", Schema{{Name: "x", Type: Float64}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("t", Schema{{Name: "x", Type: Float64}}); err == nil {
		t.Fatal("duplicate table accepted")
	}
	if got := db.Tables(); len(got) != 1 || got[0] != "t" {
		t.Fatalf("Tables = %v", got)
	}
	if _, err := db.Table("t"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Table("zzz"); err == nil {
		t.Fatal("missing table lookup succeeded")
	}
}

func TestTrackWorkloadValidation(t *testing.T) {
	db := Open(testCost())
	if err := db.TrackWorkload("missing", Attr{Name: "a", Min: 0, Max: 1, Beta: 2}); err == nil {
		t.Fatal("tracking on missing table accepted")
	}
	_, _ = db.CreateTable("t", Schema{{Name: "x", Type: Float64}})
	if err := db.TrackWorkload("t", Attr{Name: "x", Min: 0, Max: 1, Beta: 2}); err != nil {
		t.Fatal(err)
	}
	if err := db.TrackWorkload("t", Attr{Name: "x", Min: 0, Max: 1, Beta: 2}); err == nil {
		t.Fatal("double tracking accepted")
	}
	if db.Logger("t") == nil {
		t.Fatal("logger not retrievable")
	}
}

func TestBuildImpressionsValidation(t *testing.T) {
	db := Open(testCost())
	if err := db.BuildImpressions("missing", ImpressionConfig{Sizes: []int{10}}); err == nil {
		t.Fatal("impressions on missing table accepted")
	}
	_, _ = db.CreateTable("t", Schema{{Name: "x", Type: Float64}})
	if err := db.BuildImpressions("t", ImpressionConfig{}); err == nil {
		t.Fatal("empty sizes accepted")
	}
	if err := db.BuildImpressions("t", ImpressionConfig{Sizes: []int{10, 20}}); err == nil {
		t.Fatal("increasing sizes accepted")
	}
	if err := db.BuildImpressions("t", ImpressionConfig{Sizes: []int{20, 10}}); err != nil {
		t.Fatal(err)
	}
	if err := db.BuildImpressions("t", ImpressionConfig{Sizes: []int{20, 10}}); err == nil {
		t.Fatal("double build accepted")
	}
	if db.Hierarchy("t") == nil {
		t.Fatal("hierarchy not retrievable")
	}
}

func TestLoadUnknownTable(t *testing.T) {
	db := Open(testCost())
	if err := db.Load("zzz", []Row{{1.0}}); err == nil {
		t.Fatal("load into missing table accepted")
	}
}

func TestExactQueryEndToEnd(t *testing.T) {
	db := openSky(t, 20000, Uniform)
	res, err := db.Exec("SELECT COUNT(*) FROM PhotoObjAll")
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := res.Scalar("COUNT(*)"); got != 20000 {
		t.Fatalf("count = %v", got)
	}
	if res.Bounded != nil || res.Rows == nil {
		t.Fatal("unbounded query returned bounded result")
	}
}

func TestBoundedQueryEndToEnd(t *testing.T) {
	db := openSky(t, 30000, Uniform)
	res, err := db.Exec("SELECT AVG(r) AS avg_r FROM PhotoObjAll WITHIN ERROR 0.05")
	if err != nil {
		t.Fatal(err)
	}
	if res.Bounded == nil {
		t.Fatal("bounded query returned exact result")
	}
	if res.Bounded.Exact {
		t.Fatal("5% bound should be met from a sample layer")
	}
	got, err := res.Scalar("avg_r")
	if err != nil {
		t.Fatal(err)
	}
	// True mean r is ~18.
	if math.Abs(got-18) > 0.5 {
		t.Fatalf("avg r estimate = %v", got)
	}
	if len(res.Estimates()) != 1 {
		t.Fatalf("estimates = %v", res.Estimates())
	}
	if !strings.Contains(res.String(), "avg_r") {
		t.Fatalf("String rendering missing aggregate: %s", res)
	}
}

func TestTimeBoundedQueryEndToEnd(t *testing.T) {
	db := openSky(t, 30000, Uniform)
	res, err := db.Exec("SELECT COUNT(*) FROM PhotoObjAll WHERE fGetNearbyObjEq(165, 20, 5) WITHIN TIME 50us")
	if err != nil {
		t.Fatal(err)
	}
	if res.Bounded == nil {
		t.Fatal("time-bounded query returned exact result")
	}
	if res.Bounded.Exact {
		t.Fatal("50µs budget must exclude base data under the test cost model")
	}
}

func TestBiasedWorkflowAdaptsToQueries(t *testing.T) {
	db := openSky(t, 20000, Biased)
	// Queries against one focal point are logged...
	for i := 0; i < 200; i++ {
		if _, err := db.Exec("SELECT COUNT(*) FROM PhotoObjAll WHERE fGetNearbyObjEq(165, 20, 2)"); err != nil {
			t.Fatal(err)
		}
	}
	if got := db.Logger("PhotoObjAll").Queries(); got < 200 {
		t.Fatalf("logged %d queries", got)
	}
	// ...and further loads bias toward it.
	sky, _ := skyserver.Generate(skyserver.DefaultConfig(0))
	gen := sky.Generator(nil)
	for i := 0; i < 4; i++ {
		if err := db.Load("PhotoObjAll", gen.NextBatch(5000)); err != nil {
			t.Fatal(err)
		}
	}
	h := db.Hierarchy("PhotoObjAll")
	if h == nil {
		t.Fatal("no hierarchy")
	}
	top := h.Layers()[0]
	lt, _, err := top.Table()
	if err != nil {
		t.Fatal(err)
	}
	ra, _ := lt.Float64("ra")
	focal := 0
	for _, v := range ra {
		if math.Abs(v-165) < 8 {
			focal++
		}
	}
	// The cluster plus bias should push well past the background rate.
	if frac := float64(focal) / float64(len(ra)); frac < 0.25 {
		t.Fatalf("focal fraction after adaptation = %v", frac)
	}
}

func TestProjectionWithTimeBoundUsesImpression(t *testing.T) {
	db := openSky(t, 30000, Uniform)
	res, err := db.Exec("SELECT objID, ra FROM PhotoObjAll WHERE ra BETWEEN 150 AND 180 LIMIT 10 WITHIN TIME 50us")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows == nil {
		t.Fatal("projection returned no rows result")
	}
	if res.Rows.Len() > 10 {
		t.Fatalf("limit ignored: %d rows", res.Rows.Len())
	}
	// Representative rows come from the impression (positions spread
	// across the whole table), not the first stored rows.
	ids, _ := res.Rows.Table.Int64("objID")
	var maxID int64
	for _, id := range ids {
		if id > maxID {
			maxID = id
		}
	}
	if maxID < 1000 {
		t.Fatalf("LIMIT rows look like the 'lucky first tuples': max objID %d", maxID)
	}
}

func TestExecParseError(t *testing.T) {
	db := Open(testCost())
	if _, err := db.Exec("DELETE FROM t"); err == nil {
		t.Fatal("non-SELECT accepted")
	}
}

func TestExecUnknownTable(t *testing.T) {
	db := Open(testCost())
	if _, err := db.Exec("SELECT COUNT(*) FROM nope"); err == nil {
		t.Fatal("unknown table accepted")
	}
}

func TestResultScalarErrors(t *testing.T) {
	r := &Result{}
	if _, err := r.Scalar("x"); err == nil {
		t.Fatal("empty result Scalar succeeded")
	}
	if r.String() != "(empty)" {
		t.Fatalf("empty String = %q", r.String())
	}
	db := openSky(t, 10000, Uniform)
	res, err := db.Exec("SELECT AVG(r) AS a FROM PhotoObjAll WITHIN ERROR 0.1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Scalar("nope"); err == nil {
		t.Fatal("missing aggregate Scalar succeeded")
	}
}

func TestGroupByStillExact(t *testing.T) {
	db := openSky(t, 10000, Uniform)
	res, err := db.Exec("SELECT COUNT(*) AS n FROM PhotoObjAll GROUP BY type ORDER BY n DESC")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows == nil || res.Rows.Len() < 3 {
		t.Fatalf("grouped result = %+v", res)
	}
	ns, _ := res.Rows.Float64Col("n")
	var total float64
	for _, n := range ns {
		total += n
	}
	if total != 10000 {
		t.Fatalf("group counts sum to %v", total)
	}
}

func TestAttachTableValidation(t *testing.T) {
	db := Open(testCost())
	tb := table.MustNew("t", Schema{{Name: "x", Type: Float64}})
	if err := db.AttachTable(tb); err != nil {
		t.Fatal(err)
	}
	if err := db.AttachTable(tb); err == nil {
		t.Fatal("duplicate attach accepted")
	}
}

func TestCostModelAccessor(t *testing.T) {
	db := Open(testCost())
	if db.CostModel().NsPerRow != 10 {
		t.Fatalf("cost model = %+v", db.CostModel())
	}
}
