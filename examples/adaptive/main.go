// Adaptive: impressions follow the scientist's shifting attention
// (§3.1). The workload starts on one sky region; halfway through the
// observation campaign it moves to another. The biased impression
// re-focuses within a few nightly loads, and focal query precision
// recovers with it.
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"sciborq"
	"sciborq/internal/skyserver"
	"sciborq/internal/xrand"
)

func main() {
	const (
		nights       = 30
		rowsPerNight = 10_000
		shiftAt      = 15
	)
	regionA := [2]float64{150, 15} // early-campaign focus (ra, dec)
	regionB := [2]float64{215, 45} // late-campaign focus

	cfg := skyserver.DefaultConfig(0)
	sky, err := skyserver.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	db := sciborq.Open(sciborq.WithSeed(5))
	fact, err := sky.Catalog.Get("PhotoObjAll")
	if err != nil {
		log.Fatal(err)
	}
	if err := db.AttachTable(fact); err != nil {
		log.Fatal(err)
	}
	if err := db.TrackWorkload("PhotoObjAll",
		sciborq.Attr{Name: "ra", Min: cfg.RaMin, Max: cfg.RaMax, Beta: 30},
	); err != nil {
		log.Fatal(err)
	}
	if err := db.BuildImpressions("PhotoObjAll", sciborq.ImpressionConfig{
		Sizes:  []int{8_000, 800},
		Policy: sciborq.Biased,
		Attrs:  []string{"ra"},
	}); err != nil {
		log.Fatal(err)
	}

	rng := xrand.New(77)
	gen := sky.Generator(nil)
	fmt.Printf("%6s %8s %22s\n", "night", "focus", "impression near focus")
	for night := 0; night < nights; night++ {
		focus := regionA
		if night >= shiftAt {
			focus = regionB
		}
		if night == shiftAt {
			// The scientist moved on: age out the stale interest so the
			// new focal point can take over quickly (§3.1 "fast
			// reflexes").
			db.Logger("PhotoObjAll").Decay(0.1)
		}
		// Tonight's exploration: 25 cone queries around the focus.
		for i := 0; i < 25; i++ {
			q := fmt.Sprintf(
				"SELECT COUNT(*) FROM PhotoObjAll WHERE fGetNearbyObjEq(%.2f, %.2f, 2)",
				focus[0]+rng.NormFloat64()*3, focus[1]+rng.NormFloat64()*3)
			if _, err := db.Exec(q); err != nil {
				log.Fatal(err)
			}
		}
		// Tonight's ingest; the biased impression adapts in the load path.
		if err := db.Load("PhotoObjAll", gen.NextBatch(rowsPerNight)); err != nil {
			log.Fatal(err)
		}
		frac, err := focalFraction(db, focus[0])
		if err != nil {
			log.Fatal(err)
		}
		label := "A"
		if night >= shiftAt {
			label = "B"
		}
		bar := strings.Repeat("#", int(frac*60))
		marker := ""
		if night == shiftAt {
			marker = "  <- focus shifts"
		}
		fmt.Printf("%6d %8s %6.1f%% %s%s\n", night, label, frac*100, bar, marker)
	}
}

// focalFraction reports the share of the top impression layer within
// ±10 degrees of the given ra centre.
func focalFraction(db *sciborq.DB, centre float64) (float64, error) {
	h := db.Hierarchy("PhotoObjAll")
	layers := h.Layers()
	t, _, err := layers[0].Table()
	if err != nil {
		return 0, err
	}
	ra, err := t.Float64("ra")
	if err != nil {
		return 0, err
	}
	if len(ra) == 0 {
		return 0, nil
	}
	in := 0
	for _, v := range ra {
		if math.Abs(v-centre) < 10 {
			in++
		}
	}
	return float64(in) / float64(len(ra)), nil
}
