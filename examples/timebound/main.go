// Timebound: "give me the most representative result you can obtain
// within X" (§1). Sweeps a time budget from microseconds to "unbounded"
// over the same aggregate and shows which impression layer each budget
// buys, the promised vs measured latency, and the estimate quality.
package main

import (
	"fmt"
	"log"

	"sciborq"
	"sciborq/internal/skyserver"
)

func main() {
	const rows = 400_000

	cfg := skyserver.DefaultConfig(0)
	sky, err := skyserver.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	db := sciborq.Open(sciborq.WithSeed(99))
	fact, err := sky.Catalog.Get("PhotoObjAll")
	if err != nil {
		log.Fatal(err)
	}
	if err := db.AttachTable(fact); err != nil {
		log.Fatal(err)
	}
	if err := db.BuildImpressions("PhotoObjAll", sciborq.ImpressionConfig{
		Sizes:  []int{100_000, 10_000, 1_000, 100},
		Policy: sciborq.Uniform,
	}); err != nil {
		log.Fatal(err)
	}
	gen := sky.Generator(nil)
	for night := 0; night < 20; night++ {
		if err := db.Load("PhotoObjAll", gen.NextBatch(rows/20)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("loaded %d rows; cost model: %.2f ns/row + %.0f ns fixed\n\n",
		rows, db.CostModel().NsPerRow, db.CostModel().FixedNs)

	// Exact reference.
	exact, err := db.Exec("SELECT AVG(r) AS v FROM PhotoObjAll WHERE fGetNearbyObjEq(165, 20, 6)")
	if err != nil {
		log.Fatal(err)
	}
	truth, _ := exact.Scalar("v")
	fmt.Printf("exact AVG(r) in the cone: %.5f (%v)\n\n", truth, exact.Elapsed)

	fmt.Printf("%10s %-38s %12s %12s %10s %10s\n",
		"budget", "layer", "promised", "measured", "estimate", "rel err")
	for _, budget := range []string{"20us", "100us", "500us", "2ms", "20ms", "1m"} {
		q := fmt.Sprintf(
			"SELECT AVG(r) AS v FROM PhotoObjAll WHERE fGetNearbyObjEq(165, 20, 6) WITHIN TIME %s", budget)
		res, err := db.Exec(q)
		if err != nil {
			log.Fatal(err)
		}
		ans := res.Bounded
		est := ans.Estimates[0]
		fmt.Printf("%10s %-38s %12v %12v %10.5f %9.3f%%\n",
			budget, ans.Layer, ans.Promised, ans.Elapsed, est.Value(), est.RelError()*100)
	}
	fmt.Println("\nlarger budgets buy larger layers: latency rises, error falls,")
	fmt.Println("and an unconstrained budget degrades gracefully to the exact answer.")
}
