// Quickstart: build a tiny SciBORQ database from scratch, load data in
// nightly batches, and compare an exact answer with error-bounded and
// time-bounded answers over impressions.
package main

import (
	"fmt"
	"log"

	"sciborq"
	"sciborq/internal/xrand"
)

func main() {
	db := sciborq.Open(sciborq.WithSeed(7))

	// A measurement table: sensor position and reading.
	if _, err := db.CreateTable("readings", sciborq.Schema{
		{Name: "pos", Type: sciborq.Float64},
		{Name: "value", Type: sciborq.Float64},
	}); err != nil {
		log.Fatal(err)
	}

	// Track which positions queries ask about, and build a 3-layer
	// biased impression hierarchy steered by that interest.
	if err := db.TrackWorkload("readings",
		sciborq.Attr{Name: "pos", Min: 0, Max: 100, Beta: 25},
	); err != nil {
		log.Fatal(err)
	}
	if err := db.BuildImpressions("readings", sciborq.ImpressionConfig{
		Sizes:  []int{20_000, 2_000, 200},
		Policy: sciborq.Biased,
		Attrs:  []string{"pos"},
	}); err != nil {
		log.Fatal(err)
	}

	// Declare interest around pos≈25 before loading: a few exploratory
	// queries are all SciBORQ needs to steer the sample.
	for i := 0; i < 50; i++ {
		if _, err := db.Exec("SELECT COUNT(*) FROM readings WHERE pos BETWEEN 20 AND 30"); err != nil {
			log.Fatal(err)
		}
	}

	// Load 200k rows in 20 nightly batches; impressions are maintained
	// inside the load path, base data is never re-scanned.
	rng := xrand.New(42)
	for night := 0; night < 20; night++ {
		batch := make([]sciborq.Row, 10_000)
		for i := range batch {
			pos := rng.Float64() * 100
			batch[i] = sciborq.Row{pos, 10 + pos/10 + rng.NormFloat64()}
		}
		if err := db.Load("readings", batch); err != nil {
			log.Fatal(err)
		}
	}

	// 1. Exact answer (scans all 200k rows).
	exact, err := db.Exec("SELECT AVG(value) AS v FROM readings WHERE pos BETWEEN 20 AND 30")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("exact:")
	fmt.Print(exact.String())

	// 2. Quality-bounded: 1% relative error at 95% confidence. SciBORQ
	// answers from the smallest impression layer that satisfies the
	// bound, escalating only as needed.
	approx, err := db.Exec(
		"SELECT AVG(value) AS v FROM readings WHERE pos BETWEEN 20 AND 30 WITHIN ERROR 0.01")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwithin 1% error:")
	fmt.Print(approx.String())

	// 3. Time-bounded: the most representative answer the cost model
	// predicts can be produced in 200µs.
	fast, err := db.Exec(
		"SELECT AVG(value) AS v FROM readings WHERE pos BETWEEN 20 AND 30 WITHIN TIME 200us")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwithin 200µs:")
	fmt.Print(fast.String())
}
