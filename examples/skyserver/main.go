// SkyServer exploration: the paper's motivating scenario (§2). An
// astronomer explores a synthetic sky catalogue with cone searches; the
// biased impressions concentrate on the region under study, so bounded
// queries there are both fast and tight, while the full data set remains
// available for exact overnight runs.
package main

import (
	"fmt"
	"log"

	"sciborq"
	"sciborq/internal/skyserver"
)

func main() {
	const rows = 300_000

	cfg := skyserver.DefaultConfig(0)
	sky, err := skyserver.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	db := sciborq.Open(sciborq.WithSeed(2011))
	for _, name := range []string{"PhotoObjAll", "Field", "PhotoTag"} {
		t, err := sky.Catalog.Get(name)
		if err != nil {
			log.Fatal(err)
		}
		if err := db.AttachTable(t); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.TrackWorkload("PhotoObjAll",
		sciborq.Attr{Name: "ra", Min: cfg.RaMin, Max: cfg.RaMax, Beta: 30},
		sciborq.Attr{Name: "dec", Min: cfg.DecMin, Max: cfg.DecMax, Beta: 30},
	); err != nil {
		log.Fatal(err)
	}
	if err := db.BuildImpressions("PhotoObjAll", sciborq.ImpressionConfig{
		Sizes:  []int{30_000, 3_000, 300},
		Policy: sciborq.Biased,
		Attrs:  []string{"ra", "dec"},
	}); err != nil {
		log.Fatal(err)
	}

	// The scientist's interest: the galaxy cluster near (165, 20). Run
	// the paper's Figure-1 query shape a few times so the predicate set
	// captures the focal point...
	fmt.Println("exploring the cluster at (ra=165, dec=20)...")
	for i := 0; i < 100; i++ {
		if _, err := db.Exec("SELECT COUNT(*) FROM PhotoObjAll WHERE type = 'GALAXY' AND fGetNearbyObjEq(165, 20, 3)"); err != nil {
			log.Fatal(err)
		}
	}

	// ...then tonight's ingest arrives and the impressions focus on it.
	gen := sky.Generator(nil)
	for night := 0; night < 15; night++ {
		if err := db.Load("PhotoObjAll", gen.NextBatch(rows/15)); err != nil {
			log.Fatal(err)
		}
	}

	queries := []string{
		// How many clean galaxies near the cluster? 5% error suffices
		// for hypothesis screening.
		"SELECT COUNT(*) AS galaxies FROM PhotoObjAll WHERE type = 'GALAXY' AND fGetNearbyObjEq(165, 20, 3) WITHIN ERROR 0.05",
		// Mean magnitude and colour in the cluster core, tighter bound.
		"SELECT AVG(r) AS mean_r, AVG(g - r) AS colour FROM PhotoObjAll WHERE fGetNearbyObjEq(165, 20, 1.5) WITHIN ERROR 0.02",
		// Interactive skim: best representative answer in 1ms.
		"SELECT COUNT(*) AS bright FROM PhotoObjAll WHERE r < 17 AND fGetNearbyObjEq(165, 20, 3) WITHIN TIME 1ms",
		// The overnight exact run for the paper trail.
		"SELECT COUNT(*) AS galaxies FROM PhotoObjAll WHERE type = 'GALAXY' AND fGetNearbyObjEq(165, 20, 3)",
	}
	for _, q := range queries {
		res, err := db.Exec(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s\n", q)
		fmt.Print(res.String())
		if res.Bounded != nil {
			fmt.Printf("  (answered from %s in %v)\n", res.Bounded.Layer, res.Elapsed)
		} else {
			fmt.Printf("  (exact, %v)\n", res.Elapsed)
		}
	}

	// Show that representative LIMIT queries come from the impression,
	// not the first stored tuples (§3.2).
	res, err := db.Exec("SELECT objID, ra, dec, r FROM PhotoObjAll WHERE fGetNearbyObjEq(165, 20, 3) LIMIT 5 WITHIN TIME 1ms")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrepresentative LIMIT 5 (sampled across the whole table):")
	fmt.Print(res.String())
}
