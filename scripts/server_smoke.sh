#!/bin/sh
# server_smoke.sh — boot sciborqd and run every curl example from
# docs/SERVER.md verbatim against it. Any command failure, non-JSON
# response, or malformed /stats document fails the script. This is the
# CI guarantee that the wire-protocol docs cannot rot.
set -eu

REPO="$(cd "$(dirname "$0")/.." && pwd)"
DOC="$REPO/docs/SERVER.md"
ADDR="localhost:8080"
ROWS="${SMOKE_ROWS:-40000}"
BIN="$(mktemp -d)/sciborqd"

cleanup() {
    [ -n "${SRV_PID:-}" ] && kill "$SRV_PID" 2>/dev/null || true
    [ -n "${SRV2_PID:-}" ] && kill "$SRV2_PID" 2>/dev/null || true
    rm -rf "$(dirname "$BIN")"
}
trap cleanup EXIT INT TERM

echo "== building cmd/sciborqd"
go build -o "$BIN" "$REPO/cmd/sciborqd"

echo "== booting sciborqd (-rows $ROWS)"
"$BIN" -addr :8080 -rows "$ROWS" -layers 8000,800 &
SRV_PID=$!

# Wait for the health endpoint (data generation happens before listen).
i=0
until curl -sf "$ADDR/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 120 ]; then
        echo "server never became healthy" >&2
        exit 1
    fi
    if ! kill -0 "$SRV_PID" 2>/dev/null; then
        echo "server exited during boot" >&2
        exit 1
    fi
    sleep 0.5
done
echo "== server healthy"

# json_check FILE: the response must parse as JSON.
json_check() {
    if command -v python3 >/dev/null 2>&1; then
        python3 -m json.tool <"$1" >/dev/null
    else
        # Fallback: a JSON document here always starts with '{'.
        head -c 1 "$1" | grep -q '{'
    fi
}

# Extract every curl example from the doc and run it verbatim.
OUT="$(mktemp)"
fails=0
total=0
while IFS= read -r line; do
    cmd="$(printf '%s' "$line" | sed 's/^[[:space:]]*//')"
    total=$((total + 1))
    echo "-- $cmd"
    if ! sh -c "$cmd" >"$OUT" 2>&1; then
        echo "   FAILED (curl exit)" >&2
        fails=$((fails + 1))
        continue
    fi
    if ! json_check "$OUT"; then
        echo "   FAILED (non-JSON response):" >&2
        cat "$OUT" >&2
        fails=$((fails + 1))
    fi
done <<EOF
$(grep -E '^[[:space:]]*curl ' "$DOC")
EOF
rm -f "$OUT"

if [ "$total" -eq 0 ]; then
    echo "no curl examples found in $DOC" >&2
    exit 1
fi
if [ "$fails" -gt 0 ]; then
    echo "== $fails/$total curl examples failed" >&2
    exit 1
fi
echo "== all $total curl examples passed"

# /stats must be a well-formed document carrying the documented keys.
STATS="$(curl -sf "$ADDR/stats")"
for key in uptime_ns admission recycler tenants max_in_flight resilience handler_panics; do
    if ! printf '%s' "$STATS" | grep -q "\"$key\""; then
        echo "/stats missing key \"$key\":" >&2
        printf '%s\n' "$STATS" >&2
        exit 1
    fi
done
echo "== /stats well-formed"

# Retry-After: a zero-capacity instance (-max-inflight=-1 admits
# nothing) must reject every query with 429 and carry a Retry-After
# header with a positive whole-second value — the load-shedding
# contract docs/SERVER.md documents.
echo "== booting zero-capacity instance for the Retry-After check"
"$BIN" -addr :8081 -rows 2000 -layers 400,40 -max-inflight=-1 &
SRV2_PID=$!
i=0
until curl -sf "localhost:8081/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 120 ]; then
        echo "zero-capacity server never became healthy" >&2
        exit 1
    fi
    if ! kill -0 "$SRV2_PID" 2>/dev/null; then
        echo "zero-capacity server exited during boot" >&2
        exit 1
    fi
    sleep 0.5
done
HDRS="$(curl -s -D - -o /dev/null -X POST localhost:8081/query \
    -d '{"sql": "SELECT COUNT(*) AS n FROM PhotoObjAll"}')"
printf '%s' "$HDRS" | head -n 1 | grep -q ' 429' || {
    echo "zero-capacity query did not return 429:" >&2
    printf '%s\n' "$HDRS" >&2
    exit 1
}
printf '%s' "$HDRS" | grep -iq '^Retry-After: *[1-9]' || {
    echo "429 response missing a positive Retry-After header:" >&2
    printf '%s\n' "$HDRS" >&2
    exit 1
}
kill -TERM "$SRV2_PID" 2>/dev/null || true
wait "$SRV2_PID" 2>/dev/null || true
SRV2_PID=""
echo "== Retry-After on 429 ok"

# Graceful shutdown: SIGTERM must end the process promptly.
kill -TERM "$SRV_PID"
i=0
while kill -0 "$SRV_PID" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 60 ]; then
        echo "server ignored SIGTERM" >&2
        exit 1
    fi
    sleep 0.5
done
SRV_PID=""
echo "== graceful shutdown ok"
echo "PASS"
