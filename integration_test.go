package sciborq

// Integration tests: the full SciBORQ lifecycle through the public API —
// schema, workload tracking, hierarchy construction, nightly loads,
// exploration with bounded queries, workload drift, and exact overnight
// verification. These are the end-to-end acceptance tests of the
// reproduction.

import (
	"math"
	"testing"
	"time"

	"sciborq/internal/engine"
	"sciborq/internal/skyserver"
)

func TestFullExplorationLifecycle(t *testing.T) {
	db := Open(WithCostModel(engine.CostModel{NsPerRow: 12, FixedNs: 2000}), WithSeed(314))
	cfg := skyserver.DefaultConfig(0)
	sky, err := skyserver.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fact, err := sky.Catalog.Get("PhotoObjAll")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AttachTable(fact); err != nil {
		t.Fatal(err)
	}
	if err := db.TrackWorkload("PhotoObjAll",
		Attr{Name: "ra", Min: cfg.RaMin, Max: cfg.RaMax, Beta: 30},
		Attr{Name: "dec", Min: cfg.DecMin, Max: cfg.DecMax, Beta: 30},
	); err != nil {
		t.Fatal(err)
	}
	if err := db.BuildImpressions("PhotoObjAll", ImpressionConfig{
		Sizes:  []int{8000, 800},
		Policy: Biased,
		Attrs:  []string{"ra", "dec"},
	}); err != nil {
		t.Fatal(err)
	}

	// Phase 1: exploration queries declare interest in the cluster.
	for i := 0; i < 120; i++ {
		if _, err := db.Exec("SELECT COUNT(*) FROM PhotoObjAll WHERE fGetNearbyObjEq(165, 20, 2)"); err != nil {
			t.Fatal(err)
		}
	}

	// Phase 2: ten nightly loads build the biased impressions in-line.
	gen := sky.Generator(nil)
	for night := 0; night < 10; night++ {
		if err := db.Load("PhotoObjAll", gen.NextBatch(8000)); err != nil {
			t.Fatal(err)
		}
	}
	if fact.Len() != 80000 {
		t.Fatalf("base rows = %d", fact.Len())
	}

	// Phase 3: bounded focal query — must come from a sample layer and
	// cover the exact answer.
	const focalSQL = "SELECT COUNT(*) AS n FROM PhotoObjAll WHERE fGetNearbyObjEq(165, 20, 3)"
	exact, err := db.Exec(focalSQL)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := exact.Scalar("n")
	if err != nil {
		t.Fatal(err)
	}
	if truth < 1000 {
		t.Fatalf("cluster cone has only %v objects", truth)
	}
	bounded, err := db.Exec(focalSQL + " WITHIN ERROR 0.12 CONFIDENCE 0.99")
	if err != nil {
		t.Fatal(err)
	}
	if bounded.Bounded == nil || bounded.Bounded.Exact {
		t.Fatalf("focal bounded query did not use a sample layer: %+v", bounded.Bounded)
	}
	est := bounded.Estimates()[0]
	if !est.Interval.Contains(truth) {
		t.Fatalf("bounded count [%v, %v] misses exact %v",
			est.Interval.Lo(), est.Interval.Hi(), truth)
	}

	// Phase 4: the bounded answer must be materially cheaper than exact.
	if bounded.Elapsed > exact.Elapsed {
		t.Logf("warning: bounded (%v) not faster than exact (%v) at this scale",
			bounded.Elapsed, exact.Elapsed)
	}

	// Phase 5: time-bounded query honours the budget semantics.
	timed, err := db.Exec(focalSQL + " WITHIN TIME 150us")
	if err != nil {
		t.Fatal(err)
	}
	if timed.Bounded == nil {
		t.Fatal("time-bounded query returned exact result type")
	}
	if timed.Bounded.Exact {
		t.Fatal("150µs cannot buy an 80000-row scan under the test cost model")
	}
}

func TestLearnedPromisesConvergeThroughPublicAPI(t *testing.T) {
	// Start with a wildly optimistic cost model; repeated time-bounded
	// queries must teach the executor realistic promises.
	db := Open(WithCostModel(engine.CostModel{NsPerRow: 0.001, FixedNs: 10}), WithSeed(21))
	sky, err := skyserver.New(skyserver.DefaultConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	fact, _ := sky.Catalog.Get("PhotoObjAll")
	if err := db.AttachTable(fact); err != nil {
		t.Fatal(err)
	}
	if err := db.BuildImpressions("PhotoObjAll", ImpressionConfig{
		Sizes: []int{5000, 500}, Policy: Uniform,
	}); err != nil {
		t.Fatal(err)
	}
	gen := sky.Generator(nil)
	if err := db.Load("PhotoObjAll", gen.NextBatch(50000)); err != nil {
		t.Fatal(err)
	}
	const q = "SELECT AVG(r) AS v FROM PhotoObjAll WHERE fGetNearbyObjEq(165, 20, 5) WITHIN TIME 300us"
	var first, last *Result
	for i := 0; i < 12; i++ {
		res, err := db.Exec(q)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = res
		}
		last = res
	}
	// The first run believes base data costs ~50µs; after learning the
	// promise for the same layer choice must be far more realistic.
	if first.Bounded == nil || last.Bounded == nil {
		t.Fatal("bounded results missing")
	}
	firstRows := first.Bounded.Trail[0].Rows
	lastRows := last.Bounded.Trail[0].Rows
	if lastRows > firstRows {
		t.Fatalf("learning increased the layer: %d -> %d rows", firstRows, lastRows)
	}
	if lastRows == firstRows && last.Bounded.Promised <= first.Bounded.Promised {
		t.Fatalf("promises did not become more honest: %v -> %v",
			first.Bounded.Promised, last.Bounded.Promised)
	}
}

func TestLastSeenPolicyThroughPublicAPI(t *testing.T) {
	db := Open(WithCostModel(engine.CostModel{NsPerRow: 12, FixedNs: 2000}), WithSeed(8))
	if _, err := db.CreateTable("obs", Schema{
		{Name: "t", Type: Float64},
		{Name: "v", Type: Float64},
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.BuildImpressions("obs", ImpressionConfig{
		Sizes:  []int{500, 50},
		Policy: LastSeen,
		K:      500, D: 1000,
	}); err != nil {
		t.Fatal(err)
	}
	for day := 0; day < 50; day++ {
		batch := make([]Row, 1000)
		for i := range batch {
			batch[i] = Row{float64(day), float64(day*1000 + i)}
		}
		if err := db.Load("obs", batch); err != nil {
			t.Fatal(err)
		}
	}
	// The top layer must be dominated by recent days.
	h := db.Hierarchy("obs")
	lt, _, err := h.Layers()[0].Table()
	if err != nil {
		t.Fatal(err)
	}
	days, err := lt.Float64("t")
	if err != nil {
		t.Fatal(err)
	}
	recent := 0
	for _, d := range days {
		if d >= 45 {
			recent++
		}
	}
	if frac := float64(recent) / float64(len(days)); frac < 0.5 {
		t.Fatalf("Last Seen impression holds only %.0f%% recent tuples", frac*100)
	}
}

func TestConcurrentExecIsSafe(t *testing.T) {
	db := Open(WithCostModel(engine.CostModel{NsPerRow: 12, FixedNs: 2000}), WithSeed(9))
	sky, _ := skyserver.New(skyserver.DefaultConfig(0))
	fact, _ := sky.Catalog.Get("PhotoObjAll")
	if err := db.AttachTable(fact); err != nil {
		t.Fatal(err)
	}
	if err := db.TrackWorkload("PhotoObjAll",
		Attr{Name: "ra", Min: 120, Max: 240, Beta: 30}); err != nil {
		t.Fatal(err)
	}
	if err := db.BuildImpressions("PhotoObjAll", ImpressionConfig{
		Sizes: []int{2000, 200}, Policy: Uniform,
	}); err != nil {
		t.Fatal(err)
	}
	gen := sky.Generator(nil)
	if err := db.Load("PhotoObjAll", gen.NextBatch(20000)); err != nil {
		t.Fatal(err)
	}
	// Concurrent readers while a writer loads nightly batches.
	done := make(chan error, 8)
	for w := 0; w < 6; w++ {
		go func() {
			for i := 0; i < 30; i++ {
				if _, err := db.Exec("SELECT AVG(r) AS v FROM PhotoObjAll WHERE ra BETWEEN 150 AND 200 WITHIN ERROR 0.1"); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	go func() {
		for i := 0; i < 5; i++ {
			if err := db.Load("PhotoObjAll", gen.NextBatch(2000)); err != nil {
				done <- err
				return
			}
			time.Sleep(time.Millisecond)
		}
		done <- nil
	}()
	for i := 0; i < 7; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestMagnitudeSanityAcrossLayers(t *testing.T) {
	// Every layer of a uniform hierarchy must agree on AVG(r) within a
	// few percent of each other — the consistency users rely on when
	// trading time for quality.
	db := openSky(t, 40000, Uniform)
	h := db.Hierarchy("PhotoObjAll")
	var values []float64
	for _, im := range h.Layers() {
		lt, _, err := im.Table()
		if err != nil {
			t.Fatal(err)
		}
		rs, err := lt.Float64("r")
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, v := range rs {
			sum += v
		}
		values = append(values, sum/float64(len(rs)))
	}
	for i := 1; i < len(values); i++ {
		if math.Abs(values[i]-values[0]) > 0.5 {
			t.Fatalf("layer means diverge: %v", values)
		}
	}
}
